package httpapi

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sync/atomic"

	"uptimebroker/internal/broker"
	"uptimebroker/internal/catalog"
	"uptimebroker/internal/scenario"
	"uptimebroker/internal/telemetry"
)

// maxBodyBytes bounds request bodies; topologies are small.
const maxBodyBytes = 1 << 20

// Server is the brokerage HTTP facade.
type Server struct {
	engine *broker.Engine
	store  *telemetry.Store // optional; nil disables observation routes
	logger *log.Logger
	mux    *http.ServeMux
	reqID  atomic.Uint64
}

// NewServer wires the routes. store may be nil for a read-only broker;
// logger may be nil to disable request logging.
func NewServer(engine *broker.Engine, store *telemetry.Store, logger *log.Logger) (*Server, error) {
	if engine == nil {
		return nil, fmt.Errorf("httpapi: nil engine")
	}
	s := &Server{
		engine: engine,
		store:  store,
		logger: logger,
		mux:    http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("POST /v1/recommendations", s.handleRecommend)
	s.mux.HandleFunc("POST /v1/pareto", s.handlePareto)
	s.mux.HandleFunc("GET /v1/catalog/technologies", s.handleTechnologies)
	s.mux.HandleFunc("GET /v1/catalog/providers", s.handleProviders)
	s.mux.HandleFunc("GET /v1/params", s.handleParams)
	s.mux.HandleFunc("POST /v1/observations", s.handleObservation)
	s.mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	s.mux.HandleFunc("POST /v1/scenarios/{name}/recommendation", s.handleScenarioRecommend)
	return s, nil
}

// ServeHTTP implements http.Handler with logging and panic recovery.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := s.reqID.Add(1)
	defer func() {
		if rec := recover(); rec != nil {
			s.logf("req=%d PANIC %s %s: %v", id, r.Method, r.URL.Path, rec)
			writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
		}
	}()
	s.logf("req=%d %s %s", id, r.Method, r.URL.Path)
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var req RecommendationRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	rec, err := s.engine.Recommend(req.ToBroker())
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, FromRecommendation(rec))
}

func (s *Server) handlePareto(w http.ResponseWriter, r *http.Request) {
	var req RecommendationRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	front, err := s.engine.Pareto(req.ToBroker())
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	out := make([]OptionCardDTO, len(front))
	for i, c := range front {
		out[i] = fromCard(c)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleTechnologies(w http.ResponseWriter, _ *http.Request) {
	techs := s.engine.Catalog().Technologies()
	out := make([]TechnologyDTO, len(techs))
	for i, t := range techs {
		out[i] = FromTechnology(t)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleProviders(w http.ResponseWriter, _ *http.Request) {
	providers := s.engine.Catalog().Providers()
	out := make([]ProviderDTO, len(providers))
	for i, p := range providers {
		out[i] = FromProvider(p)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleParams(w http.ResponseWriter, r *http.Request) {
	provider := r.URL.Query().Get("provider")
	class := r.URL.Query().Get("class")
	if provider == "" || class == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("provider and class query parameters are required"))
		return
	}

	// Prefer the live telemetry estimate, mirroring
	// broker.TelemetryParams; fall back to the catalog defaults.
	if s.store != nil {
		if est, err := s.store.Estimate(provider, class); err == nil {
			writeJSON(w, http.StatusOK, ParamsResponse{
				Provider:           provider,
				Class:              class,
				Down:               est.Node.Down,
				FailuresPerYear:    est.Node.FailuresPerYear,
				FailoverSeconds:    est.Failover.Seconds(),
				FailoverP95Seconds: est.FailoverP95.Seconds(),
				ExposureYears:      est.ExposureYears,
				Source:             "telemetry",
			})
			return
		}
	}
	params, err := s.engine.Catalog().DefaultNodeParams(provider, class)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, ParamsResponse{
		Provider:        provider,
		Class:           class,
		Down:            params.Down,
		FailuresPerYear: params.FailuresPerYear,
		Source:          "catalog",
	})
}

func (s *Server) handleObservation(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("telemetry ingestion disabled"))
		return
	}
	var obs Observation
	if err := json.NewDecoder(r.Body).Decode(&obs); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding observation: %w", err))
		return
	}
	if err := obs.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var err error
	switch obs.Kind {
	case ObservationOutage:
		err = s.store.RecordOutage(obs.Provider, obs.Class, obs.Duration())
	case ObservationFailover:
		err = s.store.RecordFailover(obs.Provider, obs.Class, obs.Duration())
	case ObservationExposure:
		err = s.store.RecordExposure(obs.Provider, obs.Class, obs.Duration())
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "recorded"})
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	provider := r.URL.Query().Get("provider")
	if provider == "" {
		provider = catalog.ProviderSoftLayerSim
	}
	all := scenario.All(provider)
	out := make([]ScenarioDTO, len(all))
	for i, sc := range all {
		out[i] = ScenarioDTO{
			Name:              sc.Name,
			Description:       sc.Description,
			Provider:          sc.Request.Base.Provider,
			Components:        len(sc.Request.Base.Components),
			SLAPercent:        sc.Request.SLA.UptimePercent,
			PenaltyPerHourUSD: sc.Request.SLA.Penalty.PerHour.Dollars(),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleScenarioRecommend(w http.ResponseWriter, r *http.Request) {
	provider := r.URL.Query().Get("provider")
	if provider == "" {
		provider = catalog.ProviderSoftLayerSim
	}
	sc, err := scenario.ByName(r.PathValue("name"), provider)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	rec, err := s.engine.Recommend(sc.Request)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, FromRecommendation(rec))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding failures at this point cannot be reported to the client;
	// the concrete payload types are all marshalable.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

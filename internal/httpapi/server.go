package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"uptimebroker/internal/broker"
	"uptimebroker/internal/catalog"
	"uptimebroker/internal/faultfs"
	"uptimebroker/internal/jobs"
	"uptimebroker/internal/jobstore"
	"uptimebroker/internal/obs"
	"uptimebroker/internal/scenario"
	"uptimebroker/internal/telemetry"
)

// maxBodyBytes bounds request bodies; topologies are small.
const maxBodyBytes = 1 << 20

// serverConfig collects the tunables behind the ServerOptions.
type serverConfig struct {
	rateLimit       float64
	rateBurst       int
	clientRateLimit float64
	clientRateBurst int
	trustProxy      bool
	jobTTL          time.Duration
	jobGC           time.Duration
	jobWorkers      int
	jobQueue        int
	jobDir          string
	jobSnapInterval time.Duration
	jobFsync        bool
	jobGroupCommit  bool
	jobFS           faultfs.FS
	maxQueueWait    time.Duration
	ssePing         time.Duration
	registry        *obs.Registry
	metricsInterval time.Duration
}

// ServerOption customizes NewServer.
type ServerOption func(*serverConfig)

// WithRateLimit enables token-bucket limiting across all routes:
// rate requests/second with the given burst. rate <= 0 (the default)
// disables limiting.
func WithRateLimit(rate float64, burst int) ServerOption {
	return func(c *serverConfig) {
		c.rateLimit = rate
		c.rateBurst = burst
	}
}

// WithPerClientRateLimit enables per-client token buckets keyed on
// the client IP: each client gets rate requests/second with the
// given burst, isolating tenants from one another while
// WithRateLimit stays the overall cap. rate <= 0 (the default)
// disables it. The key is the connection's remote address unless
// WithTrustedProxy is also set.
func WithPerClientRateLimit(rate float64, burst int) ServerOption {
	return func(c *serverConfig) {
		c.clientRateLimit = rate
		c.clientRateBurst = burst
	}
}

// WithTrustedProxy declares that a trusted reverse proxy fronts the
// server and appends the real client to X-Forwarded-For; per-client
// rate limiting then keys on the rightmost XFF entry instead of the
// (proxy's) connection address. Do not set it for directly exposed
// servers — XFF is client-forgeable there.
func WithTrustedProxy() ServerOption {
	return func(c *serverConfig) { c.trustProxy = true }
}

// WithJobDir makes the async job store durable: submissions, state
// transitions, progress and results are journaled to a WAL in dir and
// recovered on the next start (queued jobs re-queued, mid-run jobs
// failed with a restart_lost error, finished results kept, job IDs
// strictly increasing across restarts). An empty dir (the default)
// keeps the store purely in-memory.
func WithJobDir(dir string) ServerOption {
	return func(c *serverConfig) { c.jobDir = dir }
}

// WithJobSnapshotInterval sets how often the durable job store
// compacts its WAL into a snapshot (default 1m). Only meaningful with
// WithJobDir.
func WithJobSnapshotInterval(d time.Duration) ServerOption {
	return func(c *serverConfig) { c.jobSnapInterval = d }
}

// WithJobFsync makes the durable job store fsync every WAL append, so
// acknowledged submissions survive a power loss, not just a process
// crash — at a per-append disk-flush latency cost (the jobstore
// benchmarks report the difference). Only meaningful with WithJobDir.
func WithJobFsync() ServerOption {
	return func(c *serverConfig) { c.jobFsync = true }
}

// WithJobGroupCommit gives job WAL appends fsync durability with
// concurrent appends coalesced into shared flushes (group commit):
// under load most of the nosync throughput comes back at the same
// power-loss guarantee. Supersedes WithJobFsync when both are set.
// Only meaningful with WithJobDir.
func WithJobGroupCommit() ServerOption {
	return func(c *serverConfig) { c.jobGroupCommit = true }
}

// WithJobFS routes the durable job store's disk access through fsys
// instead of the real filesystem — the fault-injection seam
// (faultfs.Mem, faultfs.Injector) for degraded-mode and crash tests.
// Only meaningful with WithJobDir; production wiring omits it.
func WithJobFS(fsys faultfs.FS) ServerOption {
	return func(c *serverConfig) { c.jobFS = fsys }
}

// WithJobMaxQueueWait sheds load on job submissions: when the
// estimated queue wait (mean run time × queue depth ÷ workers)
// exceeds d, POST /v2/jobs answers 429 load_shed with a Retry-After
// instead of accepting work it cannot start in time. d <= 0 (the
// default) disables shedding.
func WithJobMaxQueueWait(d time.Duration) ServerOption {
	return func(c *serverConfig) { c.maxQueueWait = d }
}

// WithSSEPingInterval sets how often the /v2/jobs/{id}/events stream
// emits ": ping" keep-alive comments while a job is quiet (default
// 15s), so idle proxies do not reap long streams. SSE parsers discard
// comment frames per specification. d <= 0 disables keep-alives.
func WithSSEPingInterval(d time.Duration) ServerOption {
	return func(c *serverConfig) { c.ssePing = d }
}

// WithMetricsRegistry makes the server publish on (and serve from) an
// existing obs registry instead of creating its own — the way brokerd
// shares one registry between the engine and the HTTP layer. By
// default the server reuses the engine's registry when the engine is
// already instrumented, else creates a fresh one.
func WithMetricsRegistry(reg *obs.Registry) ServerOption {
	return func(c *serverConfig) { c.registry = reg }
}

// WithMetricsStreamInterval sets the default snapshot cadence of the
// GET /v2/metrics/events stream (default 2s); requests override it per
// call with ?interval=, clamped to [100ms, 1m].
func WithMetricsStreamInterval(d time.Duration) ServerOption {
	return func(c *serverConfig) {
		if d > 0 {
			c.metricsInterval = d
		}
	}
}

// WithJobTTL sets how long finished async jobs are retained for
// polling (default 15m).
func WithJobTTL(d time.Duration) ServerOption {
	return func(c *serverConfig) { c.jobTTL = d }
}

// WithJobGCInterval sets how often expired jobs are swept (default
// 1m).
func WithJobGCInterval(d time.Duration) ServerOption {
	return func(c *serverConfig) { c.jobGC = d }
}

// WithJobWorkers sets the async job worker pool size (default
// runtime.GOMAXPROCS).
func WithJobWorkers(n int) ServerOption {
	return func(c *serverConfig) { c.jobWorkers = n }
}

// WithJobQueueCapacity bounds the async job queue; submissions beyond
// it are rejected with a queue_full problem (default 1024).
func WithJobQueueCapacity(n int) ServerOption {
	return func(c *serverConfig) { c.jobQueue = n }
}

// Server is the brokerage HTTP facade: the synchronous v1 surface,
// plus the v2 job-oriented surface (async jobs, batch
// recommendations) with RFC 9457 problem+json errors throughout.
type Server struct {
	engine  *broker.Engine
	store   *telemetry.Store // optional; nil disables observation routes
	logger  *log.Logger
	jobs    *jobs.Store
	handler http.Handler
	ssePing time.Duration

	// registry is the server's metrics registry (never nil after
	// NewServer); metricsInterval paces the SSE metrics stream.
	registry        *obs.Registry
	metricsInterval time.Duration

	// maxQueueWait is the load-shedding bound on the estimated job
	// queue wait (0 = no shedding); loadShed counts shed submissions.
	maxQueueWait time.Duration
	loadShed     *obs.Counter

	// ready flips true once the job store is open and recovery is
	// complete, and back to false on Close — what GET /readyz reports.
	ready atomic.Bool

	// clientLimiter is the per-client bucket map when per-client rate
	// limiting is on; nil otherwise. Held here so its occupancy feeds
	// the ratelimit_client_buckets gauge.
	clientLimiter *clientBuckets
}

// NewServer wires the routes and starts the async job workers. store
// may be nil for a read-only broker; logger may be nil to disable
// request logging. Call Close when done to stop the job subsystem.
func NewServer(engine *broker.Engine, store *telemetry.Store, logger *log.Logger, opts ...ServerOption) (*Server, error) {
	if engine == nil {
		return nil, fmt.Errorf("httpapi: nil engine")
	}
	cfg := serverConfig{ssePing: 15 * time.Second, metricsInterval: 2 * time.Second}
	for _, opt := range opts {
		opt(&cfg)
	}

	// Resolve the metrics registry: an explicit option wins, else share
	// the engine's (when its constructor attached one), else create a
	// private registry. Either way the engine ends up instrumented on
	// it — InstrumentMetrics is idempotent, so an engine that already
	// publishes elsewhere keeps its first registry.
	reg := cfg.registry
	if reg == nil {
		reg = engine.MetricsRegistry()
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	engine.InstrumentMetrics(reg)
	obs.RegisterBuildInfo(reg)

	var jobOpts []jobs.Option
	jobOpts = append(jobOpts, jobs.WithMetricsRegistry(reg))
	if cfg.jobTTL > 0 {
		jobOpts = append(jobOpts, jobs.WithTTL(cfg.jobTTL))
	}
	if cfg.jobGC > 0 {
		jobOpts = append(jobOpts, jobs.WithGCInterval(cfg.jobGC))
	}
	if cfg.jobWorkers > 0 {
		jobOpts = append(jobOpts, jobs.WithWorkers(cfg.jobWorkers))
	}
	if cfg.jobQueue > 0 {
		jobOpts = append(jobOpts, jobs.WithQueueCapacity(cfg.jobQueue))
	}
	if cfg.jobSnapInterval > 0 {
		jobOpts = append(jobOpts, jobs.WithSnapshotInterval(cfg.jobSnapInterval))
	}

	s := &Server{
		engine:          engine,
		store:           store,
		logger:          logger,
		ssePing:         cfg.ssePing,
		registry:        reg,
		metricsInterval: cfg.metricsInterval,
		maxQueueWait:    cfg.maxQueueWait,
	}
	s.loadShed = reg.Counter("http_load_shed_total",
		"Job submissions refused because the estimated queue wait exceeded the bound.")
	if cfg.jobDir != "" {
		fileOpts := []jobstore.FileOption{jobstore.WithMetricsRegistry(reg)}
		if cfg.jobFsync {
			fileOpts = append(fileOpts, jobstore.WithFsync())
		}
		if cfg.jobGroupCommit {
			fileOpts = append(fileOpts, jobstore.WithGroupCommit())
		}
		if cfg.jobFS != nil {
			fileOpts = append(fileOpts, jobstore.WithFS(cfg.jobFS))
		}
		backend, err := jobstore.OpenFile(cfg.jobDir, fileOpts...)
		if err != nil {
			return nil, fmt.Errorf("httpapi: opening job store: %w", err)
		}
		jobStore, err := jobs.Open(backend, s.jobResolver, jobOpts...)
		if err != nil {
			_ = backend.Close()
			return nil, fmt.Errorf("httpapi: recovering job store: %w", err)
		}
		s.jobs = jobStore
		if logger != nil {
			m := jobStore.Metrics()
			logger.Printf("recovered %d persisted jobs from %s (%d re-queued)", m.Recovered, cfg.jobDir, m.QueueDepth)
		}
	} else {
		s.jobs = jobs.NewStore(jobOpts...)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handlePrometheus)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v2/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v2/metrics/events", s.handleMetricsEvents)

	// v1: the original synchronous surface, now thin wrappers over
	// the same context-aware handlers v2 uses.
	mux.HandleFunc("POST /v1/recommendations", s.handleRecommend)
	mux.HandleFunc("POST /v1/pareto", s.handlePareto)
	mux.HandleFunc("GET /v1/catalog/technologies", s.handleTechnologies)
	mux.HandleFunc("GET /v1/catalog/providers", s.handleProviders)
	mux.HandleFunc("GET /v1/params", s.handleParams)
	mux.HandleFunc("POST /v1/observations", s.handleObservation)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("POST /v1/scenarios/{name}/recommendation", s.handleScenarioRecommend)

	// v2: same synchronous routes plus the job-oriented additions.
	mux.HandleFunc("POST /v2/recommendations", s.handleRecommend)
	mux.HandleFunc("POST /v2/pareto", s.handlePareto)
	mux.HandleFunc("GET /v2/catalog/technologies", s.handleTechnologies)
	mux.HandleFunc("GET /v2/catalog/providers", s.handleProviders)
	mux.HandleFunc("GET /v2/params", s.handleParams)
	mux.HandleFunc("POST /v2/observations", s.handleObservation)
	mux.HandleFunc("GET /v2/scenarios", s.handleScenarios)
	mux.HandleFunc("POST /v2/scenarios/{name}/recommendation", s.handleScenarioRecommend)
	mux.HandleFunc("POST /v2/recommendations/batch", s.handleBatch)
	mux.HandleFunc("POST /v2/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v2/jobs", s.handleJobList)
	mux.HandleFunc("GET /v2/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v2/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("DELETE /v2/jobs/{id}", s.handleJobCancel)

	// The ServeMux's own 404/405 replies are plain text; wrap them
	// into problems so every error on the surface is problem+json.
	root := problemNotFound(mux)

	mws := []Middleware{
		RequestID(),
		Logging(logger),
		Recover(logger),
		routeMetrics(reg, mux),
	}
	if cfg.rateLimit > 0 {
		// Liveness and readiness probes must keep answering under
		// load: a limiter that 429s /healthz would get the server
		// restarted by the very traffic it is absorbing.
		mws = append(mws, exempt(RateLimit(cfg.rateLimit, cfg.rateBurst), "/healthz", "/readyz"))
	}
	if cfg.clientRateLimit > 0 {
		burst := cfg.clientRateBurst
		if burst < 1 {
			burst = 1
		}
		s.clientLimiter = newClientBuckets(cfg.clientRateLimit, burst, nil)
		reg.GaugeFunc("ratelimit_client_buckets", "Live per-client rate-limit buckets.",
			func() float64 { return float64(s.clientLimiter.size()) })
		mws = append(mws, exempt(perClientRateLimitBuckets(s.clientLimiter, cfg.trustProxy), "/healthz", "/readyz"))
	}
	mws = append(mws, MaxBody(maxBodyBytes))
	s.handler = Chain(root, mws...)
	s.ready.Store(true)
	return s, nil
}

// problemNotFound intercepts the mux's text 404/405 fallbacks and
// rewrites them as problems, leaving matched routes untouched.
func problemNotFound(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, pattern := mux.Handler(r)
		if pattern == "" {
			// No route matched: distinguish 405 (path known under
			// another method) from 404 by probing the mux with the
			// other methods.
			if allowed := allowedMethods(mux, r); len(allowed) > 0 {
				w.Header().Set("Allow", strings.Join(allowed, ", "))
				p := NewProblem(CodeMethodNotAllowed, http.StatusMethodNotAllowed,
					fmt.Sprintf("%s not allowed on %s", r.Method, r.URL.Path))
				p.RequestID = RequestIDFrom(r.Context())
				writeProblem(w, p)
				return
			}
			p := NewProblem(CodeNotFound, http.StatusNotFound, fmt.Sprintf("no route %s", r.URL.Path))
			p.RequestID = RequestIDFrom(r.Context())
			writeProblem(w, p)
			return
		}
		// Dispatch through the mux itself (not the handler returned
		// above) so it sets the request's matched path values.
		mux.ServeHTTP(w, r)
	})
}

// allowedMethods lists the other methods that match the request path
// (the 405 case); empty means a plain 404.
func allowedMethods(mux *http.ServeMux, r *http.Request) []string {
	var allowed []string
	for _, m := range []string{http.MethodGet, http.MethodPost, http.MethodPut, http.MethodDelete, http.MethodPatch} {
		if m == r.Method {
			continue
		}
		probe := r.Clone(r.Context())
		probe.Method = m
		if _, pattern := mux.Handler(probe); pattern != "" {
			allowed = append(allowed, m)
		}
	}
	return allowed
}

// ServeHTTP implements http.Handler through the middleware chain.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Close stops the async job subsystem: running jobs are cancelled,
// queued jobs marked cancelled. The server reports not-ready on
// GET /readyz from the moment Close begins.
func (s *Server) Close() {
	s.ready.Store(false)
	s.jobs.Close()
}

// Jobs exposes the job store's metrics for operational surfaces.
func (s *Server) JobMetrics() jobs.Metrics { return s.jobs.Metrics() }

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

// problem writes an RFC 9457 error tagged with the request ID.
func (s *Server) problem(w http.ResponseWriter, r *http.Request, code string, status int, detail string) {
	p := NewProblem(code, status, detail)
	p.RequestID = RequestIDFrom(r.Context())
	writeProblem(w, p)
}

// writeJSON emits a success payload. Encode failures (client gone,
// payload unmarshalable) cannot be reported to the client once the
// status line is out, so they are logged instead of discarded.
func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logf("req=%s encoding %s %s response: %v", RequestIDFrom(r.Context()), r.Method, r.URL.Path, err)
	}
}

// decodeBody decodes a JSON request body, writing the problem itself
// on failure. Failures inside a request's "solver" object — the one
// strictly decoded member — get their own code so clients can tell a
// mistyped solver knob from a malformed body.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		code := CodeInvalidBody
		var solverErr *SolverSpecError
		if errors.As(err, &solverErr) {
			code = CodeInvalidSolver
		}
		s.problem(w, r, code, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return false
	}
	return true
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, http.StatusOK, map[string]string{"status": "ok"})
}

// markDegraded advertises serve-through on a latched job store: the
// synchronous recommend/pareto routes keep answering (cache included)
// while persistence is read-only, and X-Degraded: store tells clients
// the response came from a broker in that state. Must run before the
// status line is written.
func (s *Server) markDegraded(w http.ResponseWriter) {
	if s.jobs.Degraded() != nil {
		w.Header().Set("X-Degraded", "store")
	}
}

// cacheStatusContext wires the engine's cache-report hook into the
// response: the X-Cache header is set the moment the engine resolves
// the request (synchronously, before any handler writes the status
// line), and the captured status lets handlers with a response
// envelope echo it in the body. On cache-less engines the hook never
// fires, the header stays absent and the captured status empty.
func cacheStatusContext(w http.ResponseWriter, r *http.Request) (context.Context, *string) {
	status := new(string)
	ctx := broker.WithCacheReport(r.Context(), func(st string) {
		*status = st
		w.Header().Set("X-Cache", st)
	})
	return ctx, status
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var req RecommendationRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	s.markDegraded(w)
	ctx, cacheStatus := cacheStatusContext(w, r)
	rec, err := s.engine.Recommend(ctx, req.ToBroker())
	if err != nil {
		s.problem(w, r, CodeInvalidRequest, http.StatusUnprocessableEntity, err.Error())
		return
	}
	resp := FromRecommendation(rec)
	resp.Cache = *cacheStatus
	s.writeJSON(w, r, http.StatusOK, resp)
}

func (s *Server) handlePareto(w http.ResponseWriter, r *http.Request) {
	var req RecommendationRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	s.markDegraded(w)
	// The frontier response is a bare card array with no envelope for
	// a cache member; X-Cache alone carries the disposition.
	ctx, _ := cacheStatusContext(w, r)
	front, err := s.engine.Pareto(ctx, req.ToBroker())
	if err != nil {
		s.problem(w, r, CodeInvalidRequest, http.StatusUnprocessableEntity, err.Error())
		return
	}
	out := make([]OptionCardDTO, len(front))
	for i, c := range front {
		out[i] = fromCard(c)
	}
	s.writeJSON(w, r, http.StatusOK, out)
}

// handleMetrics implements GET /v1/metrics and /v2/metrics: job
// subsystem counters, result-cache counters (when caching is on) and
// the invalidation epochs behind the cache's content addresses.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	resp := MetricsResponse{
		Jobs:         s.jobs.Metrics(),
		CatalogEpoch: s.engine.Catalog().Epoch(),
	}
	if m, ok := s.engine.CacheMetrics(); ok {
		dto := fromCacheMetrics(m)
		resp.Cache = &dto
	}
	if epoch, ok := s.engine.ParamsEpoch(); ok {
		resp.ParamsEpoch = &epoch
	}
	if s.clientLimiter != nil {
		resp.RateLimiter = &RateLimiterMetricsDTO{ClientBuckets: s.clientLimiter.size()}
	}
	build := obs.CurrentBuild()
	resp.Build = &BuildInfoDTO{
		Version:       build.Version,
		GoVersion:     build.GoVersion,
		StartedAt:     obs.ProcessStart(),
		UptimeSeconds: time.Since(obs.ProcessStart()).Seconds(),
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

func (s *Server) handleTechnologies(w http.ResponseWriter, r *http.Request) {
	techs := s.engine.Catalog().Technologies()
	out := make([]TechnologyDTO, len(techs))
	for i, t := range techs {
		out[i] = FromTechnology(t)
	}
	s.writeJSON(w, r, http.StatusOK, out)
}

func (s *Server) handleProviders(w http.ResponseWriter, r *http.Request) {
	providers := s.engine.Catalog().Providers()
	out := make([]ProviderDTO, len(providers))
	for i, p := range providers {
		out[i] = FromProvider(p)
	}
	s.writeJSON(w, r, http.StatusOK, out)
}

func (s *Server) handleParams(w http.ResponseWriter, r *http.Request) {
	provider := r.URL.Query().Get("provider")
	class := r.URL.Query().Get("class")
	if provider == "" || class == "" {
		s.problem(w, r, CodeInvalidRequest, http.StatusBadRequest, "provider and class query parameters are required")
		return
	}

	// Prefer the live telemetry estimate, mirroring
	// broker.TelemetryParams; fall back to the catalog defaults only
	// when the store simply has nothing yet — a store that *fails* is
	// a server fault and must surface as one, not silently degrade.
	if s.store != nil {
		est, err := s.store.Estimate(provider, class)
		switch {
		case err == nil:
			s.writeJSON(w, r, http.StatusOK, ParamsResponse{
				Provider:           provider,
				Class:              class,
				Down:               est.Node.Down,
				FailuresPerYear:    est.Node.FailuresPerYear,
				FailoverSeconds:    est.Failover.Seconds(),
				FailoverP95Seconds: est.FailoverP95.Seconds(),
				ExposureYears:      est.ExposureYears,
				Source:             "telemetry",
			})
			return
		case !errors.Is(err, telemetry.ErrNoEstimate):
			s.problem(w, r, CodeTelemetryError, http.StatusInternalServerError, err.Error())
			return
		}
	}
	params, err := s.engine.Catalog().DefaultNodeParams(provider, class)
	if err != nil {
		s.problem(w, r, CodeNotFound, http.StatusNotFound, err.Error())
		return
	}
	s.writeJSON(w, r, http.StatusOK, ParamsResponse{
		Provider:        provider,
		Class:           class,
		Down:            params.Down,
		FailuresPerYear: params.FailuresPerYear,
		Source:          "catalog",
	})
}

func (s *Server) handleObservation(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		s.problem(w, r, CodeTelemetryDisabled, http.StatusNotImplemented, "telemetry ingestion disabled")
		return
	}
	var obs Observation
	if !s.decodeBody(w, r, &obs) {
		return
	}
	if err := obs.Validate(); err != nil {
		s.problem(w, r, CodeInvalidRequest, http.StatusBadRequest, err.Error())
		return
	}
	var err error
	switch obs.Kind {
	case ObservationOutage:
		err = s.store.RecordOutage(obs.Provider, obs.Class, obs.Duration())
	case ObservationFailover:
		err = s.store.RecordFailover(obs.Provider, obs.Class, obs.Duration())
	case ObservationExposure:
		err = s.store.RecordExposure(obs.Provider, obs.Class, obs.Duration())
	}
	if err != nil {
		s.problem(w, r, CodeInvalidRequest, http.StatusBadRequest, err.Error())
		return
	}
	s.writeJSON(w, r, http.StatusAccepted, map[string]string{"status": "recorded"})
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	provider := r.URL.Query().Get("provider")
	if provider == "" {
		provider = catalog.ProviderSoftLayerSim
	}
	all := scenario.All(provider)
	out := make([]ScenarioDTO, len(all))
	for i, sc := range all {
		out[i] = ScenarioDTO{
			Name:              sc.Name,
			Description:       sc.Description,
			Provider:          sc.Request.Base.Provider,
			Components:        len(sc.Request.Base.Components),
			SLAPercent:        sc.Request.SLA.UptimePercent,
			PenaltyPerHourUSD: sc.Request.SLA.Penalty.PerHour.Dollars(),
		}
	}
	s.writeJSON(w, r, http.StatusOK, out)
}

func (s *Server) handleScenarioRecommend(w http.ResponseWriter, r *http.Request) {
	provider := r.URL.Query().Get("provider")
	if provider == "" {
		provider = catalog.ProviderSoftLayerSim
	}
	sc, err := scenario.ByName(r.PathValue("name"), provider)
	if err != nil {
		s.problem(w, r, CodeNotFound, http.StatusNotFound, err.Error())
		return
	}
	s.markDegraded(w)
	ctx, cacheStatus := cacheStatusContext(w, r)
	rec, err := s.engine.Recommend(ctx, sc.Request)
	if err != nil {
		s.problem(w, r, CodeInvalidRequest, http.StatusUnprocessableEntity, err.Error())
		return
	}
	resp := FromRecommendation(rec)
	resp.Cache = *cacheStatus
	s.writeJSON(w, r, http.StatusOK, resp)
}

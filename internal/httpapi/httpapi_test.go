package httpapi

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"uptimebroker/internal/broker"
	"uptimebroker/internal/catalog"
	"uptimebroker/internal/telemetry"
	"uptimebroker/internal/topology"
)

// newTestServer spins a full broker + telemetry stack behind httptest.
func newTestServer(t *testing.T, opts ...ServerOption) (*httptest.Server, *Client, *telemetry.Store) {
	t.Helper()
	cat := catalog.Default()
	store := telemetry.NewStore()
	engine, err := broker.New(cat, broker.TelemetryParams{
		Store:            store,
		Fallback:         broker.CatalogParams{Catalog: cat},
		MinExposureYears: 0.5,
	})
	if err != nil {
		t.Fatalf("broker.New: %v", err)
	}
	srv, err := NewServer(engine, store, nil, opts...)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return ts, client, store
}

// caseStudyWire converts the case study into its wire form.
func caseStudyWire() RecommendationRequest {
	cs := broker.CaseStudy()
	return RecommendationRequest{
		Base:              cs.Base,
		SLAPercent:        cs.SLA.UptimePercent,
		PenaltyPerHourUSD: cs.SLA.Penalty.PerHour.Dollars(),
		AsIs:              map[string]string(cs.AsIs),
		AllowedTechs:      cs.AllowedTechs,
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil, nil, nil); err == nil {
		t.Fatal("nil engine should fail")
	}
}

func TestNewClientValidation(t *testing.T) {
	for _, u := range []string{"", "://bad", "relative/path"} {
		if _, err := NewClient(u, nil); err == nil {
			t.Fatalf("NewClient(%q) should fail", u)
		}
	}
	if _, err := NewClient("http://localhost:1", nil); err != nil {
		t.Fatalf("valid URL rejected: %v", err)
	}
}

func TestHealth(t *testing.T) {
	_, client, _ := newTestServer(t)
	if err := client.Health(context.Background()); err != nil {
		t.Fatalf("Health: %v", err)
	}
}

func TestRecommendEndToEnd(t *testing.T) {
	_, client, _ := newTestServer(t)
	resp, err := client.Recommend(context.Background(), caseStudyWire())
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	if resp.BestOption != 3 {
		t.Fatalf("BestOption = %d, want 3", resp.BestOption)
	}
	if resp.MinRiskOption != 5 {
		t.Fatalf("MinRiskOption = %d, want 5", resp.MinRiskOption)
	}
	if resp.AsIsOption != 8 {
		t.Fatalf("AsIsOption = %d, want 8", resp.AsIsOption)
	}
	if resp.SavingsPercent < 60 || resp.SavingsPercent > 64 {
		t.Fatalf("SavingsPercent = %v, want ≈ 62", resp.SavingsPercent)
	}
	if len(resp.Cards) != 8 {
		t.Fatalf("cards = %d, want 8", len(resp.Cards))
	}
	best := resp.Cards[resp.BestOption-1]
	if best.Label != "storage=raid1" {
		t.Fatalf("best label = %q", best.Label)
	}
	if best.TCOUSD <= 0 || best.UptimePercent <= 90 {
		t.Fatalf("best card implausible: %+v", best)
	}
}

func TestRecommendBadRequests(t *testing.T) {
	ts, client, _ := newTestServer(t)

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/recommendations", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON status = %d, want 400", resp.StatusCode)
	}

	// Semantically invalid request (no components).
	bad := caseStudyWire()
	bad.Base.Components = nil
	if _, err := client.Recommend(context.Background(), bad); err == nil {
		t.Fatal("invalid request should fail")
	}

	// Unknown provider.
	bad = caseStudyWire()
	bad.Base.Provider = "ghost"
	if _, err := client.Recommend(context.Background(), bad); err == nil {
		t.Fatal("unknown provider should fail")
	}
}

func TestCatalogEndpoints(t *testing.T) {
	_, client, _ := newTestServer(t)
	ctx := context.Background()

	techs, err := client.Technologies(ctx)
	if err != nil {
		t.Fatalf("Technologies: %v", err)
	}
	if len(techs) < 8 {
		t.Fatalf("technologies = %d, want >= 8", len(techs))
	}
	seen := map[string]bool{}
	for _, tech := range techs {
		seen[tech.ID] = true
		if tech.Layer == "unknown" || tech.Mode == "unknown" {
			t.Fatalf("tech %q has unknown layer/mode", tech.ID)
		}
	}
	for _, id := range []string{catalog.TechESXHA, catalog.TechRAID1, catalog.TechDualGateway, catalog.TechBGPDual} {
		if !seen[id] {
			t.Fatalf("missing technology %q", id)
		}
	}

	providers, err := client.Providers(ctx)
	if err != nil {
		t.Fatalf("Providers: %v", err)
	}
	if len(providers) != 3 {
		t.Fatalf("providers = %d, want 3", len(providers))
	}
}

func TestObservationsAndParams(t *testing.T) {
	_, client, _ := newTestServer(t)
	ctx := context.Background()

	// Catalog fallback before any telemetry.
	params, err := client.Params(ctx, catalog.ProviderSoftLayerSim, topology.ClassBlockVolume)
	if err != nil {
		t.Fatalf("Params: %v", err)
	}
	if params.Source != "catalog" || params.Down != 0.02 {
		t.Fatalf("params = %+v, want catalog default", params)
	}

	// Feed a year of exposure and some outages.
	year := 365.0 * 24 * 3600
	if err := client.Observe(ctx, Observation{
		Provider: catalog.ProviderSoftLayerSim, Class: topology.ClassBlockVolume,
		Kind: ObservationExposure, Seconds: year,
	}); err != nil {
		t.Fatalf("Observe exposure: %v", err)
	}
	for i := 0; i < 4; i++ {
		if err := client.Observe(ctx, Observation{
			Provider: catalog.ProviderSoftLayerSim, Class: topology.ClassBlockVolume,
			Kind: ObservationOutage, Seconds: 3600,
		}); err != nil {
			t.Fatalf("Observe outage: %v", err)
		}
	}
	if err := client.Observe(ctx, Observation{
		Provider: catalog.ProviderSoftLayerSim, Class: topology.ClassBlockVolume,
		Kind: ObservationFailover, Seconds: 60,
	}); err != nil {
		t.Fatalf("Observe failover: %v", err)
	}

	params, err = client.Params(ctx, catalog.ProviderSoftLayerSim, topology.ClassBlockVolume)
	if err != nil {
		t.Fatalf("Params after telemetry: %v", err)
	}
	if params.Source != "telemetry" {
		t.Fatalf("source = %q, want telemetry", params.Source)
	}
	if params.FailuresPerYear < 3.9 || params.FailuresPerYear > 4.1 {
		t.Fatalf("FailuresPerYear = %v, want ≈ 4", params.FailuresPerYear)
	}
	if params.FailoverSeconds != 60 {
		t.Fatalf("FailoverSeconds = %v, want 60", params.FailoverSeconds)
	}
}

func TestObservationValidationOverHTTP(t *testing.T) {
	_, client, _ := newTestServer(t)
	ctx := context.Background()
	bad := []Observation{
		{Provider: "", Class: "c", Kind: ObservationOutage, Seconds: 1},
		{Provider: "p", Class: "", Kind: ObservationOutage, Seconds: 1},
		{Provider: "p", Class: "c", Kind: "weird", Seconds: 1},
		{Provider: "p", Class: "c", Kind: ObservationOutage, Seconds: -1},
		{Provider: "p", Class: "c", Kind: ObservationExposure, Seconds: 0}, // store rejects zero exposure
	}
	for _, obs := range bad {
		if err := client.Observe(ctx, obs); err == nil {
			t.Fatalf("Observe(%+v) should fail", obs)
		}
	}
}

func TestObservationsDisabledWithoutStore(t *testing.T) {
	cat := catalog.Default()
	engine, err := broker.New(cat, broker.CatalogParams{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(engine, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client, _ := NewClient(ts.URL, ts.Client())
	err = client.Observe(context.Background(), Observation{
		Provider: "p", Class: "c", Kind: ObservationOutage, Seconds: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "501") {
		t.Fatalf("Observe without store = %v, want HTTP 501", err)
	}
}

func TestParamsQueryValidation(t *testing.T) {
	ts, _, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/params")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing query params status = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/params?provider=ghost&class=vm.virtualized")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown provider status = %d, want 404", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/recommendations")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on POST route = %d, want 405", resp.StatusCode)
	}
}

func TestUnknownRoute(t *testing.T) {
	ts, _, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown route = %d, want 404", resp.StatusCode)
	}
}

func TestTelemetryInfluencesRecommendationOverHTTP(t *testing.T) {
	// The full feedback loop over the wire: observations shift the
	// recommendation away from storage HA when storage proves solid.
	_, client, _ := newTestServer(t)
	ctx := context.Background()

	year := 365.0 * 24 * 3600
	feed := func(class string, downFrac float64, outages int) {
		t.Helper()
		if err := client.Observe(ctx, Observation{
			Provider: catalog.ProviderSoftLayerSim, Class: class,
			Kind: ObservationExposure, Seconds: 20 * year,
		}); err != nil {
			t.Fatal(err)
		}
		if err := client.Observe(ctx, Observation{
			Provider: catalog.ProviderSoftLayerSim, Class: class,
			Kind: ObservationOutage, Seconds: 20 * year * downFrac,
		}); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < outages; i++ {
			if err := client.Observe(ctx, Observation{
				Provider: catalog.ProviderSoftLayerSim, Class: class,
				Kind: ObservationOutage, Seconds: 0,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed(topology.ClassVirtualMachine, 0.02, 100)
	feed(topology.ClassBlockVolume, 0.0002, 20)
	feed(topology.ClassGateway, 0.0002, 20)

	resp, err := client.Recommend(ctx, caseStudyWire())
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	best := resp.Cards[resp.BestOption-1]
	if strings.Contains(best.Label, "storage") {
		t.Fatalf("best option still buys storage HA after telemetry: %q", best.Label)
	}
	if !strings.Contains(best.Label, "compute") {
		t.Fatalf("best option should buy compute HA after telemetry: %q", best.Label)
	}
}

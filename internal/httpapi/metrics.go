package httpapi

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"uptimebroker/internal/obs"
)

// Bounds on the SSE metrics stream's snapshot interval: fast enough
// for a live dashboard, slow enough that a hostile ?interval cannot
// turn the stream into a busy loop.
const (
	minMetricsInterval = 100 * time.Millisecond
	maxMetricsInterval = time.Minute
)

// routeInstruments caches one route's counter and histogram so the
// per-request path skips the registry's label-key rendering.
type routeInstruments struct {
	requests *obs.Counter
	seconds  *obs.Histogram
}

// routeMetrics instruments every request with per-route counts and
// latency plus a process-wide in-flight gauge. The route label is the
// mux pattern the request matched ("GET /v2/jobs/{id}"), so path
// parameters cannot explode the label space; unmatched requests share
// one "unmatched" series.
func routeMetrics(reg *obs.Registry, mux *http.ServeMux) Middleware {
	inflight := reg.Gauge("http_inflight_requests",
		"Requests currently being served.")
	var routes sync.Map // pattern -> *routeInstruments
	instrumentsFor := func(route string) *routeInstruments {
		if ri, ok := routes.Load(route); ok {
			return ri.(*routeInstruments)
		}
		l := obs.L("route", route)
		ri := &routeInstruments{
			requests: reg.Counter("http_requests_total", "Requests served per route.", l),
			seconds:  reg.Histogram("http_request_seconds", "Request latency per route.", obs.DefBuckets, l),
		}
		actual, _ := routes.LoadOrStore(route, ri)
		return actual.(*routeInstruments)
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			route := "unmatched"
			if _, pattern := mux.Handler(r); pattern != "" {
				route = pattern
			}
			ri := instrumentsFor(route)
			ri.requests.Inc()
			inflight.Inc()
			start := time.Now()
			defer func() {
				inflight.Dec()
				ri.seconds.ObserveSeconds(time.Since(start).Seconds())
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// handlePrometheus implements GET /metrics: the registry in Prometheus
// text exposition format, scrapeable by any Prometheus-compatible
// collector.
func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	if err := s.registry.WritePrometheus(w); err != nil {
		s.logf("req=%s writing /metrics: %v", RequestIDFrom(r.Context()), err)
	}
}

// handleReady implements GET /readyz: 200 once the job store is open
// and recovery is complete, 503 before that, after Close, and after the
// store latches its fail-stop degraded state. Load balancers and
// replica supervisors gate traffic on it, so a degraded replica stops
// receiving new work while a healthy one exists; /healthz stays the
// pure liveness probe (a degraded process is alive — it still serves
// reads and synchronous routes).
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		s.problem(w, r, CodeUnavailable, http.StatusServiceUnavailable, "job store not ready")
		return
	}
	if err := s.jobs.Degraded(); err != nil {
		s.markDegraded(w)
		s.problem(w, r, CodeStoreDegraded, http.StatusServiceUnavailable,
			"job store is degraded to read-only: "+err.Error())
		return
	}
	s.writeJSON(w, r, http.StatusOK, map[string]string{"status": "ready"})
}

// handleMetricsEvents implements GET /v2/metrics/events.
//
// With "Accept: text/event-stream" it streams "metrics" events — each
// a full registry snapshot (obs.Snapshot JSON) — on a fixed cadence:
// the server's configured interval (WithMetricsStreamInterval, default
// 2s) or the request's ?interval override, clamped to [100ms, 1m].
// The first snapshot is sent immediately so dashboards paint without
// waiting a full period, and ": ping" comment frames keep idle proxies
// from reaping slow streams. Clients that cannot speak SSE get the
// current snapshot as a single JSON document.
func (s *Server) handleMetricsEvents(w http.ResponseWriter, r *http.Request) {
	interval := s.metricsInterval
	if q := r.URL.Query().Get("interval"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil {
			s.problem(w, r, CodeInvalidRequest, http.StatusBadRequest, fmt.Sprintf("invalid interval %q: %v", q, err))
			return
		}
		interval = d
	}
	if interval < minMetricsInterval {
		interval = minMetricsInterval
	}
	if interval > maxMetricsInterval {
		interval = maxMetricsInterval
	}

	flusher, canFlush := w.(http.Flusher)
	if !canFlush || !acceptsEventStream(r) {
		s.writeJSON(w, r, http.StatusOK, s.registry.Snapshot())
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// A nil channel (pings disabled) blocks forever in the select.
	var pingC <-chan time.Time
	if s.ssePing > 0 {
		ping := time.NewTicker(s.ssePing)
		defer ping.Stop()
		pingC = ping.C
	}

	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	seq := 0
	emit := func() bool {
		payload, err := json.Marshal(s.registry.Snapshot())
		if err != nil {
			s.logf("req=%s encoding metrics snapshot: %v", RequestIDFrom(r.Context()), err)
			return false
		}
		seq++
		if _, err := fmt.Fprintf(w, "event: metrics\nid: %d\ndata: %s\n\n", seq, payload); err != nil {
			return false // client went away
		}
		flusher.Flush()
		return true
	}
	if !emit() {
		return
	}
	for {
		select {
		case <-ticker.C:
			if !emit() {
				return
			}
		case <-pingC:
			if _, err := io.WriteString(w, ": ping\n\n"); err != nil {
				return // client went away
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

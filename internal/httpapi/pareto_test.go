package httpapi

import (
	"context"
	"net/http"
	"strings"
	"testing"
)

func TestParetoEndToEnd(t *testing.T) {
	_, client, _ := newTestServer(t)
	front, err := client.Pareto(context.Background(), caseStudyWire())
	if err != nil {
		t.Fatalf("Pareto: %v", err)
	}
	if len(front) == 0 {
		t.Fatal("empty frontier")
	}
	for i := 1; i < len(front); i++ {
		if front[i].HACostUSD <= front[i-1].HACostUSD {
			t.Fatal("frontier cost not increasing over the wire")
		}
		if front[i].UptimePercent <= front[i-1].UptimePercent {
			t.Fatal("frontier uptime not increasing over the wire")
		}
	}
	for _, c := range front {
		if c.Label == "network=dual-gateway" {
			t.Fatal("dominated option leaked onto the wire frontier")
		}
	}
}

func TestParetoBadRequests(t *testing.T) {
	ts, client, _ := newTestServer(t)

	resp, err := http.Post(ts.URL+"/v1/pareto", "application/json", strings.NewReader("{bad"))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON status = %d, want 400", resp.StatusCode)
	}

	bad := caseStudyWire()
	bad.Base.Provider = "ghost"
	if _, err := client.Pareto(context.Background(), bad); err == nil {
		t.Fatal("unknown provider should fail")
	}
}

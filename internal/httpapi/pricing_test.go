package httpapi

import (
	"context"
	"net/http"
	"strings"
	"testing"

	"uptimebroker/internal/broker"
)

// TestPricingSelectableEndToEnd drives both card-pricing modes
// through the wire "pricing" field: identical cards and summary
// either way — pricing is a performance knob, never a correctness
// one.
func TestPricingSelectableEndToEnd(t *testing.T) {
	_, client, _ := newTestServer(t)
	ctx := context.Background()

	seqReq := caseStudyWire()
	seqReq.Pricing = broker.PricingSequential
	seq, err := client.Recommend(ctx, seqReq)
	if err != nil {
		t.Fatalf("Recommend(sequential): %v", err)
	}

	parReq := caseStudyWire()
	parReq.Pricing = broker.PricingParallel
	par, err := client.Recommend(ctx, parReq)
	if err != nil {
		t.Fatalf("Recommend(parallel): %v", err)
	}

	if len(par.Cards) != len(seq.Cards) {
		t.Fatalf("parallel %d cards, sequential %d", len(par.Cards), len(seq.Cards))
	}
	for i := range seq.Cards {
		if !equalCardDTO(par.Cards[i], seq.Cards[i]) {
			t.Fatalf("card %d diverges:\n  sequential %+v\n  parallel   %+v", i, seq.Cards[i], par.Cards[i])
		}
	}
	if par.BestOption != seq.BestOption || par.MinRiskOption != seq.MinRiskOption ||
		par.SavingsPercent != seq.SavingsPercent {
		t.Fatalf("summary diverges: sequential best=%d, parallel best=%d", seq.BestOption, par.BestOption)
	}
}

// equalCardDTO compares the comparable fields of two option cards
// (Choices is a slice, so the structs are not directly comparable).
func equalCardDTO(a, b OptionCardDTO) bool {
	if a.Option != b.Option || a.Label != b.Label || a.HACostUSD != b.HACostUSD ||
		a.UptimePercent != b.UptimePercent || a.PenaltyUSD != b.PenaltyUSD ||
		a.TCOUSD != b.TCOUSD || a.MeetsSLA != b.MeetsSLA || len(a.Choices) != len(b.Choices) {
		return false
	}
	for i := range a.Choices {
		if a.Choices[i] != b.Choices[i] {
			return false
		}
	}
	return true
}

// TestPricingUnknownRejected: a bogus pricing mode is a 422
// invalid_request on the synchronous surface.
func TestPricingUnknownRejected(t *testing.T) {
	_, client, _ := newTestServer(t)
	req := caseStudyWire()
	req.Pricing = "warp"
	_, err := client.Recommend(context.Background(), req)
	apiErr, ok := err.(*APIError)
	if !ok {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.Status != http.StatusUnprocessableEntity || apiErr.Code != CodeInvalidRequest {
		t.Fatalf("problem = %d/%s, want 422/%s", apiErr.Status, apiErr.Code, CodeInvalidRequest)
	}
	if !strings.Contains(apiErr.Detail, "warp") {
		t.Fatalf("detail %q does not name the bad pricing mode", apiErr.Detail)
	}
}

// TestClientDefaultPricing: WithPricing stamps outgoing requests that
// leave the choice open, and the request round-trips the job surface
// (the mode rides in the journaled payload like strategy does).
func TestClientDefaultPricing(t *testing.T) {
	ts, _, _ := newTestServer(t)
	client, err := NewClient(ts.URL, ts.Client(), WithPricing(broker.PricingSequential))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if _, err := client.Recommend(ctx, caseStudyWire()); err != nil {
		t.Fatalf("Recommend with client pricing default: %v", err)
	}

	// An invalid client default surfaces as the server's 422, proving
	// the stamp actually crosses the wire.
	bad, err := NewClient(ts.URL, ts.Client(), WithPricing("warp"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = bad.Recommend(ctx, caseStudyWire())
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("stamped bad pricing mode not rejected: %v", err)
	}

	// Job submissions carry it too.
	job, err := client.SubmitJob(ctx, JobKindRecommend, caseStudyWire())
	if err != nil {
		t.Fatal(err)
	}
	status, err := client.WaitJob(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != "done" {
		t.Fatalf("job finished as %s (%+v)", status.State, status.Error)
	}
}

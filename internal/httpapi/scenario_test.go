package httpapi

import (
	"context"
	"testing"

	"uptimebroker/internal/catalog"
)

func TestScenariosEndpoint(t *testing.T) {
	_, client, _ := newTestServer(t)
	ctx := context.Background()

	scenarios, err := client.Scenarios(ctx, "")
	if err != nil {
		t.Fatalf("Scenarios: %v", err)
	}
	if len(scenarios) != 5 {
		t.Fatalf("scenarios = %d, want 5", len(scenarios))
	}
	names := map[string]bool{}
	for _, sc := range scenarios {
		names[sc.Name] = true
		if sc.Description == "" || sc.Components < 1 || sc.SLAPercent <= 0 {
			t.Fatalf("scenario %q incomplete: %+v", sc.Name, sc)
		}
	}
	for _, want := range []string{"casestudy", "ecommerce", "analytics", "messaging", "vdi"} {
		if !names[want] {
			t.Fatalf("missing scenario %q", want)
		}
	}

	// Provider selection flows through.
	scenarios, err = client.Scenarios(ctx, catalog.ProviderStratus)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scenarios {
		if sc.Name == "casestudy" {
			continue // the paper's case study pins its own provider
		}
		if sc.Provider != catalog.ProviderStratus {
			t.Fatalf("scenario %q provider = %q", sc.Name, sc.Provider)
		}
	}
}

func TestScenarioRecommendationEndpoint(t *testing.T) {
	_, client, _ := newTestServer(t)
	ctx := context.Background()

	rec, err := client.ScenarioRecommendation(ctx, "casestudy", "")
	if err != nil {
		t.Fatalf("ScenarioRecommendation: %v", err)
	}
	if rec.BestOption != 3 {
		t.Fatalf("casestudy best = %d, want 3", rec.BestOption)
	}

	rec, err = client.ScenarioRecommendation(ctx, "ecommerce", catalog.ProviderNimbus)
	if err != nil {
		t.Fatalf("ecommerce on nimbus: %v", err)
	}
	if rec.Provider != catalog.ProviderNimbus {
		t.Fatalf("provider = %q", rec.Provider)
	}

	if _, err := client.ScenarioRecommendation(ctx, "mainframe", ""); err == nil {
		t.Fatal("unknown scenario should 404")
	}
}

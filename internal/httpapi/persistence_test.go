package httpapi

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"uptimebroker/internal/broker"
	"uptimebroker/internal/catalog"
	"uptimebroker/internal/jobs"
	"uptimebroker/internal/jobstore"
	"uptimebroker/internal/telemetry"
)

// newDurableServer builds a broker stack with a persistent job store
// in dir. Unlike newTestServer it does not register cleanup for the
// API server: recovery tests shut it down mid-test and start a
// successor.
func newDurableServer(t *testing.T, dir string, opts ...ServerOption) (*httptest.Server, *Server, *Client) {
	t.Helper()
	cat := catalog.Default()
	store := telemetry.NewStore()
	engine, err := broker.New(cat, broker.CatalogParams{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(engine, store, nil, append([]ServerOption{WithJobDir(dir)}, opts...)...)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(srv)
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	return ts, srv, client
}

// TestServerRestartRecovery is the end-to-end durability contract: a
// broker started with a data directory, "killed" mid-job, and
// restarted must serve completed results, re-run queued jobs to
// completion, fail the interrupted job with restart_lost, and keep
// job IDs strictly increasing.
func TestServerRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	// Incarnation one: complete a real job so its result is journaled.
	ts1, srv1, client1 := newDurableServer(t, dir)
	done, err := client1.SubmitJob(ctx, JobKindRecommend, caseStudyWire())
	if err != nil {
		t.Fatal(err)
	}
	doneStatus, err := client1.WaitJob(ctx, done.ID)
	if err != nil {
		t.Fatal(err)
	}
	if doneStatus.State != "done" {
		t.Fatalf("job 1 = %s, want done", doneStatus.State)
	}
	wantRec, err := doneStatus.Recommendation()
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	srv1.Close()

	// The crash: append what a kill -9 mid-job leaves in the WAL — a
	// started-but-unfinished job and a still-queued job, both with
	// real payloads the resolver must reconstitute.
	backend, err := jobstore.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := backend.Load()
	if err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(caseStudyWire())
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UTC()
	crash := []jobstore.Event{
		{Type: jobstore.EventSubmitted, Time: now, ID: "job-00000002", Seq: snap.Seq + 1, Kind: JobKindRecommend, Payload: payload},
		{Type: jobstore.EventStarted, Time: now, ID: "job-00000002"},
		{Type: jobstore.EventProgress, Time: now, ID: "job-00000002", Evaluated: 3, SpaceSize: 8},
		{Type: jobstore.EventSubmitted, Time: now, ID: "job-00000003", Seq: snap.Seq + 2, Kind: JobKindPareto, Payload: payload},
	}
	for _, ev := range crash {
		if err := backend.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := backend.Close(); err != nil {
		t.Fatal(err)
	}

	// Incarnation two recovers the store.
	ts2, srv2, client2 := newDurableServer(t, dir)
	defer func() { ts2.Close(); srv2.Close() }()

	// Completed results are still fetchable, bit for bit.
	recovered, err := client2.GetJob(ctx, done.ID)
	if err != nil {
		t.Fatalf("completed job lost across restart: %v", err)
	}
	if recovered.State != "done" {
		t.Fatalf("job 1 after restart = %s, want done", recovered.State)
	}
	gotRec, err := recovered.Recommendation()
	if err != nil {
		t.Fatal(err)
	}
	if gotRec.BestOption != wantRec.BestOption || len(gotRec.Cards) != len(wantRec.Cards) {
		t.Fatalf("recovered result diverges: best %d/%d cards %d/%d",
			gotRec.BestOption, wantRec.BestOption, len(gotRec.Cards), len(wantRec.Cards))
	}

	// The interrupted job reports restart_lost with its last progress.
	lost, err := client2.GetJob(ctx, "job-00000002")
	if err != nil {
		t.Fatal(err)
	}
	if lost.State != "failed" || lost.Error == nil || lost.Error.Code != CodeRestartLost {
		t.Fatalf("mid-run job after restart = %s / %+v, want failed / restart_lost", lost.State, lost.Error)
	}
	if lost.Progress == nil || lost.Progress.Evaluated != 3 || lost.Progress.SpaceSize != 8 {
		t.Fatalf("mid-run job progress = %+v, want 3/8 preserved", lost.Progress)
	}

	// The queued job re-runs to completion through the resolver.
	requeued, err := client2.WaitJob(ctx, "job-00000003")
	if err != nil {
		t.Fatal(err)
	}
	if requeued.State != "done" {
		t.Fatalf("queued job after restart = %s (error %+v), want done", requeued.State, requeued.Error)
	}
	if _, err := requeued.ParetoFront(); err != nil {
		t.Fatalf("requeued pareto result: %v", err)
	}

	// New IDs continue past everything recovered.
	fresh, err := client2.SubmitJob(ctx, JobKindRecommend, caseStudyWire())
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID <= "job-00000003" {
		t.Fatalf("post-restart ID %s does not increase past job-00000003", fresh.ID)
	}
}

// TestJobEventsSSE reads the raw Server-Sent Events stream against a
// gated job, so the stream deterministically observes the running
// state, live progress, and the terminal event with its result.
func TestJobEventsSSE(t *testing.T) {
	dir := t.TempDir()
	ts, srv, _ := newDurableServer(t, dir)
	defer func() { ts.Close(); srv.Close() }()

	attached := make(chan struct{})
	finish := make(chan struct{})
	snap, err := srv.jobs.Submit("recommend", nil, func(ctx context.Context) (any, error) {
		<-attached
		jobs.ReportProgress(ctx, 2048, 8192)
		jobs.ReportProgress(ctx, 8192, 8192)
		<-finish
		return map[string]int{"best_option": 1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v2/jobs/"+snap.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	var (
		events     int
		progressed bool
		lastEval   int64
		final      JobStatus
		gateOpen   bool
		released   bool
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		case line == "" && data != "":
			events++
			var st JobStatus
			if err := json.Unmarshal([]byte(data), &st); err != nil {
				t.Fatalf("event %d is not a job document: %v\n%s", events, err, data)
			}
			data = ""
			// The first delivery proves the subscription is live; only
			// then let the job report progress and finish.
			if !gateOpen {
				gateOpen = true
				close(attached)
			}
			if st.Progress != nil {
				if st.Progress.Evaluated < lastEval {
					t.Fatalf("progress regressed: %d after %d", st.Progress.Evaluated, lastEval)
				}
				lastEval = st.Progress.Evaluated
				if st.State == "running" && st.Progress.Evaluated == 8192 && !released {
					progressed = true
					released = true
					close(finish)
				}
			}
			final = st
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if final.State != "done" {
		t.Fatalf("stream ended on %q (error %+v), want done", final.State, final.Error)
	}
	if !progressed {
		t.Fatal("stream never carried a running progress event")
	}
	// Stream events never embed the (arbitrarily large) result; the
	// job document does.
	if len(final.Result) != 0 {
		t.Fatalf("terminal event carries a result payload: %s", final.Result)
	}
	if final.Progress == nil || final.Progress.SpaceSize != 8192 || final.Progress.Percent != 100 {
		t.Fatalf("terminal progress = %+v, want 8192/8192 (100%%)", final.Progress)
	}
	fetched, err := NewClientMust(t, ts).GetJob(context.Background(), snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(fetched.Result) == 0 {
		t.Fatal("GET /v2/jobs/{id} after the terminal event missing the result")
	}
}

// NewClientMust builds a client for an httptest server.
func NewClientMust(t *testing.T, ts *httptest.Server) *Client {
	t.Helper()
	c, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestJobEventsPollingFallback: without SSE negotiation the events
// route answers one JSON snapshot, same shape as GET /v2/jobs/{id}.
func TestJobEventsPollingFallback(t *testing.T) {
	ts, client, _ := newTestServer(t)
	ctx := context.Background()

	job, err := client.SubmitJob(ctx, JobKindRecommend, caseStudyWire())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitJob(ctx, job.ID); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v2/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("fallback Content-Type = %q, want application/json", ct)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	// Like the stream, the fallback reports state + progress only;
	// the result lives at GET /v2/jobs/{id}.
	if st.ID != job.ID || st.State != "done" || len(st.Result) != 0 {
		t.Fatalf("fallback snapshot = %+v", st)
	}

	// Unknown IDs are a job_not_found problem either way.
	missing, err := http.Get(ts.URL + "/v2/jobs/job-nope/events")
	if err != nil {
		t.Fatal(err)
	}
	assertProblem(t, missing, http.StatusNotFound, CodeJobNotFound)
}

// TestWaitJobWithProgress drives the client's streaming wait: the
// callback sees live evaluated/space_size and the final state.
func TestWaitJobWithProgress(t *testing.T) {
	_, client, _ := newTestServer(t)
	ctx := context.Background()

	job, err := client.SubmitJob(ctx, JobKindRecommend, wideWireRequest(13))
	if err != nil {
		t.Fatal(err)
	}
	var updates []JobProgress
	status, err := client.WaitJob(ctx, job.ID, WithProgress(func(p JobProgress) {
		updates = append(updates, p)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if status.State != "done" {
		t.Fatalf("state = %s, want done", status.State)
	}
	if len(updates) == 0 {
		t.Fatal("progress callback never fired")
	}
	sawSpace := false
	for i, p := range updates {
		if p.JobID != job.ID {
			t.Fatalf("update %d for job %q, want %q", i, p.JobID, job.ID)
		}
		// Recommend jobs report one combined progress space covering
		// both passes (pricing + solver): 2 · k^n.
		if p.SpaceSize == 1<<14 {
			sawSpace = true
		}
		if f := p.Fraction(); f < 0 || f > 1 {
			t.Fatalf("Fraction = %v out of range", f)
		}
	}
	if !sawSpace {
		t.Fatalf("no update carried the space size; got %+v", updates)
	}
	if last := updates[len(updates)-1]; last.State != "done" {
		t.Fatalf("final update state = %s, want done", last.State)
	}
}

// TestJobListFilterAndLimit covers ?state= and ?limit= on the list
// route.
func TestJobListFilterAndLimit(t *testing.T) {
	ts, client, _ := newTestServer(t)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		job, err := client.SubmitJob(ctx, JobKindRecommend, caseStudyWire())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.WaitJob(ctx, job.ID); err != nil {
			t.Fatal(err)
		}
	}

	fetch := func(query string) JobListResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v2/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v2/jobs%s = %d", query, resp.StatusCode)
		}
		var out JobListResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	all := fetch("")
	if len(all.Jobs) != 3 || all.Total != 3 {
		t.Fatalf("unfiltered list = %d jobs, total %d, want 3/3", len(all.Jobs), all.Total)
	}
	done := fetch("?state=done")
	if len(done.Jobs) != 3 || done.Total != 3 {
		t.Fatalf("state=done list = %d/%d, want 3/3", len(done.Jobs), done.Total)
	}
	queued := fetch("?state=queued")
	if len(queued.Jobs) != 0 || queued.Total != 0 {
		t.Fatalf("state=queued list = %d/%d, want 0/0", len(queued.Jobs), queued.Total)
	}
	page := fetch("?state=done&limit=2")
	if len(page.Jobs) != 2 || page.Total != 3 {
		t.Fatalf("limit=2 page = %d jobs, total %d, want 2 jobs of 3", len(page.Jobs), page.Total)
	}
	// Newest first even when paginated.
	if page.Jobs[0].ID < page.Jobs[1].ID {
		t.Fatalf("page not newest-first: %s before %s", page.Jobs[0].ID, page.Jobs[1].ID)
	}

	bad, err := http.Get(ts.URL + "/v2/jobs?state=bogus")
	if err != nil {
		t.Fatal(err)
	}
	assertProblem(t, bad, http.StatusBadRequest, CodeInvalidRequest)
	badLimit, err := http.Get(ts.URL + "/v2/jobs?limit=-1")
	if err != nil {
		t.Fatal(err)
	}
	assertProblem(t, badLimit, http.StatusBadRequest, CodeInvalidRequest)
}

// TestPerClientRateLimitIsolation: one client exhausting its bucket
// must not starve another (distinguished by X-Forwarded-For behind a
// trusted proxy).
func TestPerClientRateLimitIsolation(t *testing.T) {
	ts, _, _ := newTestServer(t, WithPerClientRateLimit(0.000001, 2), WithTrustedProxy())

	get := func(ip string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/scenarios", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Forwarded-For", ip)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Client A burns its burst of 2, then is limited.
	for i := 0; i < 2; i++ {
		resp := get("203.0.113.7")
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("client A request %d = %d, want 200", i, resp.StatusCode)
		}
	}
	limited := get("203.0.113.7")
	assertProblem(t, limited, http.StatusTooManyRequests, CodeRateLimited)

	// Client B is untouched by A's exhaustion.
	respB := get("198.51.100.9")
	defer respB.Body.Close()
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("client B = %d, want 200 while A is limited", respB.StatusCode)
	}

	// Liveness stays exempt for everyone.
	health := get("203.0.113.7")
	health.Body.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz under per-client limit = %d, want 200", resp.StatusCode)
	}
}

// TestClientBucketsEviction: buckets idle past the TTL are dropped on
// the sweep cadence, bounding memory to active clients.
func TestClientBucketsEviction(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	buckets := newClientBuckets(1, 1, clock)

	for i := 0; i < 10; i++ {
		buckets.allow("10.0.0." + string(rune('0'+i)))
	}
	if n := buckets.size(); n != 10 {
		t.Fatalf("bucket count = %d, want 10", n)
	}

	// All ten go idle past the TTL; one fresh client keeps arriving.
	now = now.Add(clientIdleTTL + time.Minute)
	for i := 0; i < clientSweepEvery; i++ {
		buckets.allow("192.0.2.1")
	}
	if n := buckets.size(); n != 1 {
		t.Fatalf("bucket count after sweep = %d, want only the active client", n)
	}
}

// TestClientIP covers the keying rules: headers are ignored unless a
// trusted proxy is declared, and even then only the rightmost
// X-Forwarded-For entry (the one the trusted hop wrote) counts —
// leftmost entries are client-forgeable.
func TestClientIP(t *testing.T) {
	cases := []struct {
		remote, xff string
		trustProxy  bool
		want        string
	}{
		{"192.0.2.10:1234", "", false, "192.0.2.10"},
		{"192.0.2.10:1234", "203.0.113.7", false, "192.0.2.10"}, // forged header, no proxy: ignored
		{"192.0.2.10:1234", "203.0.113.7", true, "203.0.113.7"},
		{"192.0.2.10:1234", "6.6.6.6, 203.0.113.7", true, "203.0.113.7"}, // rightmost = trusted hop's entry
		{"192.0.2.10:1234", "  203.0.113.7  ", true, "203.0.113.7"},
		{"unix", "", false, "unix"},
	}
	for _, tc := range cases {
		r := httptest.NewRequest(http.MethodGet, "/", nil)
		r.RemoteAddr = tc.remote
		if tc.xff != "" {
			r.Header.Set("X-Forwarded-For", tc.xff)
		}
		if got := clientIP(r, tc.trustProxy); got != tc.want {
			t.Errorf("clientIP(remote=%q, xff=%q, trust=%v) = %q, want %q", tc.remote, tc.xff, tc.trustProxy, got, tc.want)
		}
	}
}

// TestXFFIgnoredWithoutTrustedProxy: a directly exposed server must
// not let clients mint fresh buckets per request via forged headers.
func TestXFFIgnoredWithoutTrustedProxy(t *testing.T) {
	ts, _, _ := newTestServer(t, WithPerClientRateLimit(0.000001, 2))

	// Every request forges a different XFF; all come from the same
	// connection address, so they share one bucket and the third 429s.
	for i := 0; i < 2; i++ {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/scenarios", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Forwarded-For", fmt.Sprintf("10.0.0.%d", i))
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d = %d, want 200", i, resp.StatusCode)
		}
	}
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/scenarios", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Forwarded-For", "10.0.0.99")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	assertProblem(t, resp, http.StatusTooManyRequests, CodeRateLimited)
}

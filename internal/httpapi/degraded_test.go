package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"uptimebroker/internal/broker"
	"uptimebroker/internal/catalog"
	"uptimebroker/internal/faultfs"
	"uptimebroker/internal/jobs"
)

// newFaultedServer builds a broker stack whose job store journals
// through fsys (an injector over an in-memory disk), so tests can
// script storage failures under the full HTTP surface.
func newFaultedServer(t *testing.T, fsys faultfs.FS, opts ...ServerOption) (*httptest.Server, *Server, *Client) {
	t.Helper()
	cat := catalog.Default()
	engine, err := broker.New(cat, broker.CatalogParams{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	all := append([]ServerOption{WithJobDir("data"), WithJobFS(fsys), WithJobFsync()}, opts...)
	srv, err := NewServer(engine, nil, nil, all...)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	return ts, srv, client
}

// TestDegradedEndToEnd is the graceful-degradation contract: after an
// injected fsync failure latches the job store, job submission returns
// 503 store_degraded, /readyz flips to 503, and the synchronous
// recommend route keeps serving 200s flagged with X-Degraded: store.
func TestDegradedEndToEnd(t *testing.T) {
	mem := faultfs.NewMem()
	inj := faultfs.NewInjector(mem, faultfs.FailSync(1, errors.New("fsync: device error")))
	ts, srv, client := newFaultedServer(t, inj)
	ctx := context.Background()

	// Healthy before the fault fires.
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before fault = %d, want 200", resp.StatusCode)
	}

	// The first submission's WAL fsync fails: the store latches and
	// the submission is refused with the degraded code.
	_, err = client.SubmitJob(ctx, JobKindRecommend, caseStudyWire())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable || apiErr.Code != CodeStoreDegraded {
		t.Fatalf("submit over failing storage = %v, want 503 %s", err, CodeStoreDegraded)
	}

	// The readiness probe now steers traffic away.
	resp, err = ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var prob Problem
	if err := json.NewDecoder(resp.Body).Decode(&prob); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || prob.Code != CodeStoreDegraded {
		t.Fatalf("readyz after latch = %d code %q, want 503 %s", resp.StatusCode, prob.Code, CodeStoreDegraded)
	}

	// Synchronous recommendations keep serving, flagged degraded.
	body, err := json.Marshal(caseStudyWire())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		resp, err := ts.Client().Post(ts.URL+"/v1/recommendations", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("recommend %d on degraded store = %d, want 200", i, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Degraded"); got != "store" {
			t.Fatalf("recommend %d X-Degraded = %q, want store", i, got)
		}
	}

	// The latch is visible on the metrics surface.
	if v := srv.registry.Snapshot().Value("store_degraded"); v != 1 {
		t.Fatalf("store_degraded gauge = %v, want 1", v)
	}
	if inj.Faults() == 0 {
		t.Fatal("no faults recorded by the injector")
	}
}

// TestLoadShedding: with a queue-wait bound configured, a submission
// arriving behind a backlog is shed with 429 load_shed and a
// Retry-After the client surfaces on its APIError.
func TestLoadShedding(t *testing.T) {
	cat := catalog.Default()
	engine, err := broker.New(cat, broker.CatalogParams{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(engine, nil, nil, WithJobWorkers(1), WithJobMaxQueueWait(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}

	// Seed run history: one completed job gives the estimator its mean.
	waitState := func(id string, want jobs.State) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			snap, err := srv.jobs.Get(id)
			if err == nil && snap.State == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("job %s never reached %s", id, want)
	}
	seed, err := srv.jobs.Submit("seed", nil, func(ctx context.Context) (any, error) {
		time.Sleep(5 * time.Millisecond)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(seed.ID, jobs.StateDone)

	// Occupy the single worker and put one job behind it.
	release := make(chan struct{})
	blocker := func(ctx context.Context) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}
	defer close(release)
	running, err := srv.jobs.Submit("block", nil, blocker)
	if err != nil {
		t.Fatal(err)
	}
	waitState(running.ID, jobs.StateRunning)
	if _, err := srv.jobs.Submit("queued", nil, blocker); err != nil {
		t.Fatal(err)
	}

	// Estimated wait (~5ms) is over the 1ns bound: shed.
	_, err = client.SubmitJob(context.Background(), JobKindRecommend, caseStudyWire())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests || apiErr.Code != CodeLoadShed {
		t.Fatalf("submit behind backlog = %v, want 429 %s", err, CodeLoadShed)
	}
	if apiErr.RetryAfter < time.Second {
		t.Fatalf("shed RetryAfter = %v, want >= 1s", apiErr.RetryAfter)
	}
	if v := srv.registry.Snapshot().Value("http_load_shed_total"); v != 1 {
		t.Fatalf("http_load_shed_total = %v, want 1", v)
	}
}

// TestClientHonorsRetryAfter: a 429 naming Retry-After: 1 must hold
// the retry back a full second even when the local backoff is a
// millisecond.
func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var gap atomic.Int64
	var first atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			first.Store(time.Now().UnixNano())
			w.Header().Set("Retry-After", "1")
			writeProblem(w, NewProblem(CodeRateLimited, http.StatusTooManyRequests, "slow down"))
		default:
			gap.Store(time.Now().UnixNano() - first.Load())
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"status":"ok"}`))
		}
	}))
	defer flaky.Close()

	client, err := NewClient(flaky.URL, flaky.Client(), WithRetries(2), WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Health(context.Background()); err != nil {
		t.Fatalf("Health = %v", err)
	}
	if got := time.Duration(gap.Load()); got < 900*time.Millisecond {
		t.Fatalf("retry waited %v, want >= ~1s from Retry-After", got)
	}
}

// TestRetryDelayBounds: the backoff shift cannot overflow on deep
// attempt counts, every delay stays within (0, maxRetryDelay], and a
// server-directed Retry-After clamps to the same cap.
func TestRetryDelayBounds(t *testing.T) {
	c := &Client{backoff: 100 * time.Millisecond}
	for _, attempt := range []int{1, 2, 10, 20, 63, 64, 1000} {
		d := c.retryDelay(attempt)
		if d <= 0 || d > maxRetryDelay {
			t.Fatalf("retryDelay(%d) = %v, want in (0, %v]", attempt, d, maxRetryDelay)
		}
	}
	if got := serverRetryAfter(&APIError{RetryAfter: 45 * time.Second}); got != maxRetryDelay {
		t.Fatalf("serverRetryAfter(45s) = %v, want clamp to %v", got, maxRetryDelay)
	}
	if got := serverRetryAfter(errors.New("plain")); got != 0 {
		t.Fatalf("serverRetryAfter(non-API error) = %v, want 0", got)
	}
}

// TestParseRetryAfter covers both RFC 9110 forms and the junk cases.
func TestParseRetryAfter(t *testing.T) {
	mk := func(v string) *http.Response {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	if got := parseRetryAfter(mk("7")); got != 7*time.Second {
		t.Fatalf("delta-seconds = %v, want 7s", got)
	}
	date := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(mk(date)); got <= 0 || got > 10*time.Second {
		t.Fatalf("http-date = %v, want in (0, 10s]", got)
	}
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	for name, v := range map[string]string{"absent": "", "junk": "soon", "negative": "-3", "past-date": past} {
		if got := parseRetryAfter(mk(v)); got != 0 {
			t.Fatalf("%s = %v, want 0", name, got)
		}
	}
}

// TestRetryAfterSeconds: durations render as whole seconds, rounded
// up, floored at 1.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{5 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"},
		{30 * time.Second, "30"},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Fatalf("retryAfterSeconds(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

package httpapi

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"uptimebroker/internal/broker"
	"uptimebroker/internal/catalog"
	"uptimebroker/internal/obs"
	"uptimebroker/internal/telemetry"
)

// scrape fetches GET /metrics and returns the exposition body.
func scrape(t *testing.T, ts *httptest.Server) (string, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestPrometheusEndpoint(t *testing.T) {
	ts, client, _ := newTestServer(t)
	ctx := context.Background()

	// Drive every subsystem once so the scrape has real series: a
	// synchronous recommend (solver + HTTP + cache families) and an
	// async job (jobs families).
	if _, err := client.Recommend(ctx, caseStudyWire()); err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	job, err := client.SubmitJob(ctx, JobKindRecommend, caseStudyWire())
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if _, err := client.WaitJob(ctx, job.ID); err != nil {
		t.Fatalf("WaitJob: %v", err)
	}

	body, contentType := scrape(t, ts)
	if contentType != obs.ContentType {
		t.Fatalf("Content-Type = %q, want %q", contentType, obs.ContentType)
	}
	for _, want := range []string{
		"# TYPE jobs_submitted_total counter",
		"# TYPE jobs_queue_wait_seconds histogram",
		"jobs_done_total 1",
		"jobs_run_seconds_count 1",
		"# TYPE broker_evaluations_total counter",
		"solver_runs_total{strategy=",
		"# TYPE http_requests_total counter",
		`http_requests_total{route="POST /v1/recommendations"} 1`,
		"http_request_seconds_bucket{",
		"# TYPE http_inflight_requests gauge",
		"catalog_epoch ",
		"build_info{",
		"process_start_time_seconds ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// le="+Inf" must appear for every histogram family in play.
	if !strings.Contains(body, `http_request_seconds_bucket{le="+Inf",route="POST /v1/recommendations"}`) &&
		!strings.Contains(body, `http_request_seconds_bucket{route="POST /v1/recommendations",le="+Inf"}`) {
		// Label order is deterministic (sorted key + le appended), so
		// the first spelling is the real contract; keep the message
		// useful either way.
		t.Errorf("exposition missing +Inf bucket for POST /v1/recommendations")
	}
}

func TestHealthAndReadiness(t *testing.T) {
	cat := catalog.Default()
	store := telemetry.NewStore()
	engine, err := broker.New(cat, broker.TelemetryParams{
		Store:            store,
		Fallback:         broker.CatalogParams{Catalog: cat},
		MinExposureYears: 0.5,
	})
	if err != nil {
		t.Fatalf("broker.New: %v", err)
	}
	srv, err := NewServer(engine, store, nil)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", got)
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", got)
	}

	// A closed server keeps answering liveness but drops readiness, so
	// load balancers drain it before the listener goes away.
	srv.Close()
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz after Close = %d, want 200", got)
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after Close = %d, want 503", got)
	}
}

func TestProbesExemptFromRateLimit(t *testing.T) {
	// A one-token bucket that essentially never refills: the first
	// API request spends it, everything but the probes then 429s.
	ts, client, _ := newTestServer(t,
		WithRateLimit(0.0001, 1),
		WithPerClientRateLimit(0.0001, 1),
	)
	ctx := context.Background()
	if _, err := client.Metrics(ctx); err != nil {
		t.Fatalf("first request should pass: %v", err)
	}
	if _, err := client.Metrics(ctx); err == nil {
		t.Fatal("second request should be rate limited")
	}
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200 (probes must be exempt)", path, resp.StatusCode)
		}
	}
}

func TestRateLimiterBucketGauge(t *testing.T) {
	ts, client, _ := newTestServer(t, WithPerClientRateLimit(1000, 100))
	if _, err := client.Metrics(context.Background()); err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	body, _ := scrape(t, ts)
	if !strings.Contains(body, "# TYPE ratelimit_client_buckets gauge") {
		t.Errorf("exposition missing ratelimit_client_buckets gauge")
	}
	m, err := client.Metrics(context.Background())
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if m.RateLimiter == nil || m.RateLimiter.ClientBuckets < 1 {
		t.Errorf("MetricsResponse.RateLimiter = %+v, want >= 1 tracked bucket", m.RateLimiter)
	}
}

func TestMetricsResponseBuildInfo(t *testing.T) {
	_, client, _ := newTestServer(t)
	m, err := client.Metrics(context.Background())
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if m.Build == nil {
		t.Fatal("MetricsResponse.Build is nil")
	}
	if m.Build.GoVersion == "" || m.Build.Version == "" {
		t.Errorf("Build = %+v, want version + go version", m.Build)
	}
	if m.Build.StartedAt.IsZero() || m.Build.UptimeSeconds < 0 {
		t.Errorf("Build start/uptime = %v/%v", m.Build.StartedAt, m.Build.UptimeSeconds)
	}
}

func TestMetricsEventStream(t *testing.T) {
	_, client, _ := newTestServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var snaps []obs.Snapshot
	err := client.WatchMetrics(ctx, 150*time.Millisecond, func(s obs.Snapshot) {
		snaps = append(snaps, s)
		if len(snaps) >= 3 {
			cancel()
		}
	})
	if err != nil && ctx.Err() == nil {
		t.Fatalf("WatchMetrics: %v", err)
	}
	if len(snaps) < 3 {
		t.Fatalf("got %d snapshots, want >= 3", len(snaps))
	}
	// Each snapshot is a coherent registry dump: build info present,
	// timestamps monotonic.
	for i, s := range snaps {
		if _, ok := s.Family("build_info"); !ok {
			t.Fatalf("snapshot %d missing build_info", i)
		}
		if i > 0 && s.Time.Before(snaps[i-1].Time) {
			t.Fatalf("snapshot %d time %v before predecessor %v", i, s.Time, snaps[i-1].Time)
		}
	}
}

func TestMetricsPollingFallback(t *testing.T) {
	_, client, _ := newTestServer(t)
	ctx := context.Background()
	if _, err := client.Recommend(ctx, caseStudyWire()); err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	snap, err := client.MetricsSnapshot(ctx)
	if err != nil {
		t.Fatalf("MetricsSnapshot: %v", err)
	}
	if len(snap.Families) == 0 {
		t.Fatal("polled snapshot has no families")
	}
	if v := snap.Value("http_requests_total"); v < 1 {
		t.Errorf("http_requests_total = %v, want >= 1", v)
	}
	if _, ok := snap.Family("catalog_epoch"); !ok {
		t.Error("polled snapshot missing catalog_epoch")
	}
}

func TestMetricsStreamBadInterval(t *testing.T) {
	ts, _, _ := newTestServer(t)
	resp, err := ts.Client().Get(ts.URL + "/v2/metrics/events?interval=banana")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad interval = %d, want 400", resp.StatusCode)
	}
}

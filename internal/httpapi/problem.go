package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// ProblemContentType is the RFC 9457 media type every error response
// carries.
const ProblemContentType = "application/problem+json"

// Machine-readable problem codes. Stable across releases: clients
// switch on Code, never on Detail text.
const (
	CodeInvalidBody       = "invalid_body"        // request body is not valid JSON
	CodeInvalidRequest    = "invalid_request"     // request is well-formed JSON but semantically invalid
	CodeInvalidSolver     = "invalid_solver"      // the "solver" object has unknown or malformed fields
	CodeNotFound          = "not_found"           // no such route or resource
	CodeMethodNotAllowed  = "method_not_allowed"  // route exists, method does not
	CodeRateLimited       = "rate_limited"        // token bucket empty
	CodeJobNotFound       = "job_not_found"       // unknown or expired job ID
	CodeJobFinished       = "job_finished"        // cancel attempted on a terminal job
	CodeQueueFull         = "queue_full"          // job queue at capacity
	CodeTelemetryDisabled = "telemetry_disabled"  // server runs without a telemetry store
	CodeTelemetryError    = "telemetry_error"     // telemetry store failed internally
	CodeInternal          = "internal"            // unclassified server fault
	CodeUnavailable       = "service_unavailable" // server shutting down
	CodeCancelled         = "cancelled"           // job cancelled before completing
	CodeRestartLost       = "restart_lost"        // job was mid-run when the broker restarted
	CodeStoreDegraded     = "store_degraded"      // job store latched read-only after a storage failure
	CodeLoadShed          = "load_shed"           // queue wait over the bound; retry later
)

// Problem is the RFC 9457 error body used on every non-2xx response,
// v1 and v2 alike. Code is the extension member clients dispatch on;
// LegacyError mirrors Detail under the pre-v2 "error" key so old v1
// clients that decode {"error": "..."} keep working.
type Problem struct {
	// Type is a URI reference identifying the problem class,
	// "urn:uptimebroker:problem:<code>".
	Type string `json:"type"`

	// Title is the short human-readable summary for the class.
	Title string `json:"title"`

	// Status echoes the HTTP status code.
	Status int `json:"status"`

	// Detail is the occurrence-specific explanation.
	Detail string `json:"detail,omitempty"`

	// Code is the stable machine-readable discriminator.
	Code string `json:"code"`

	// RequestID correlates the response with server logs.
	RequestID string `json:"request_id,omitempty"`

	// LegacyError mirrors Detail for pre-problem+json v1 clients.
	LegacyError string `json:"error,omitempty"`
}

// problemTitles maps codes to their RFC 9457 titles.
var problemTitles = map[string]string{
	CodeInvalidBody:       "Request body is not valid JSON",
	CodeInvalidRequest:    "Request failed validation",
	CodeInvalidSolver:     "Solver specification rejected",
	CodeNotFound:          "Resource not found",
	CodeMethodNotAllowed:  "Method not allowed",
	CodeRateLimited:       "Too many requests",
	CodeJobNotFound:       "Job not found",
	CodeJobFinished:       "Job already finished",
	CodeQueueFull:         "Job queue is full",
	CodeTelemetryDisabled: "Telemetry ingestion disabled",
	CodeTelemetryError:    "Telemetry store error",
	CodeInternal:          "Internal server error",
	CodeUnavailable:       "Service unavailable",
	CodeStoreDegraded:     "Job store degraded to read-only",
	CodeLoadShed:          "Server shedding load",
}

// NewProblem builds a Problem for a code/status/detail triple.
func NewProblem(code string, status int, detail string) Problem {
	title, ok := problemTitles[code]
	if !ok {
		title = http.StatusText(status)
	}
	return Problem{
		Type:        "urn:uptimebroker:problem:" + code,
		Title:       title,
		Status:      status,
		Detail:      detail,
		Code:        code,
		LegacyError: detail,
	}
}

// Error implements error so a decoded Problem can travel as one.
func (p Problem) Error() string {
	return fmt.Sprintf("%s (HTTP %d, code %s)", p.Detail, p.Status, p.Code)
}

// writeProblem emits the problem body with its media type. Encode
// errors are swallowed here — by the time encoding fails the status
// line is gone anyway — but the payload is a flat struct that cannot
// fail to marshal.
func writeProblem(w http.ResponseWriter, p Problem) {
	w.Header().Set("Content-Type", ProblemContentType)
	w.WriteHeader(p.Status)
	_ = json.NewEncoder(w).Encode(p)
}

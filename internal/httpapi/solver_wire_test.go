package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"uptimebroker/internal/optimize"
)

// TestSolverWireBackCompat is the wire half of the config-redesign
// back-compat contract: a request spelling only the deprecated flat
// "strategy" field must encode byte-identically to the pre-redesign
// wire form (no "solver" member appears), and an exact run's response
// must not grow any certificate members — old clients and the job
// journal see unchanged bytes.
func TestSolverWireBackCompat(t *testing.T) {
	req := caseStudyWire()
	req.Strategy = optimize.StrategyPruned

	encoded, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(encoded, []byte(`"solver"`)) {
		t.Fatalf("flat-only request encodes a solver member: %s", encoded)
	}

	// The v2 job journal persists the wire request and re-decodes it on
	// recovery; the flat spelling must survive that round trip exactly.
	var decoded RecommendationRequest
	if err := json.Unmarshal(encoded, &decoded); err != nil {
		t.Fatal(err)
	}
	reencoded, err := json.Marshal(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encoded, reencoded) {
		t.Fatalf("flat request did not round-trip byte-identically:\n%s\n%s", encoded, reencoded)
	}

	_, client, _ := newTestServer(t)
	resp, err := client.Recommend(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Search.Strategy != optimize.StrategyPruned {
		t.Fatalf("flat strategy echoed as %q", resp.Search.Strategy)
	}
	body, err := json.Marshal(resp.Search)
	if err != nil {
		t.Fatal(err)
	}
	for _, member := range []string{"approximate", "bound_usd", "gap", "optimal", "budget_exhausted"} {
		if bytes.Contains(body, []byte(`"`+member+`"`)) {
			t.Fatalf("exact run's search stats grew a %q member: %s", member, body)
		}
	}
}

// TestSolverWireRoundTrip: the nested spec survives a marshal cycle
// with every knob intact — the fidelity the job journal depends on.
func TestSolverWireRoundTrip(t *testing.T) {
	req := caseStudyWire()
	req.Solver = &SolverConfigDTO{
		Strategy:         optimize.StrategyBounded,
		BudgetMS:         250,
		MaxEvaluations:   9999,
		BeamWidth:        32,
		MaxDiscrepancies: 3,
		Epsilon:          0.125,
	}
	encoded, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var decoded RecommendationRequest
	if err := json.Unmarshal(encoded, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Solver == nil || *decoded.Solver != *req.Solver {
		t.Fatalf("solver spec round-tripped as %+v, want %+v", decoded.Solver, req.Solver)
	}
}

// TestSolverUnknownFieldRejected: a mistyped knob inside the "solver"
// object is a 400 with the dedicated invalid_solver problem code, and
// the offending field is named. Unknown fields elsewhere in the body
// stay tolerated (forward compatibility is per-object, not global).
func TestSolverUnknownFieldRejected(t *testing.T) {
	ts, _, _ := newTestServer(t)

	body := `{"base": {"name": "x", "provider": "industry", "components": []},
	          "sla_percent": 98,
	          "solver": {"strategy": "beam", "beamwidth": 3}}`
	resp, err := ts.Client().Post(ts.URL+"/v1/recommendations", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var prob Problem
	if err := json.NewDecoder(resp.Body).Decode(&prob); err != nil {
		t.Fatal(err)
	}
	if prob.Code != CodeInvalidSolver {
		t.Fatalf("problem code %q, want %q", prob.Code, CodeInvalidSolver)
	}
	if !strings.Contains(prob.Detail, "beamwidth") {
		t.Fatalf("detail %q does not name the unknown field", prob.Detail)
	}

	// Top-level unknown fields remain tolerated.
	tolerant := `{"base": {"name": "x", "provider": "industry", "components": []},
	              "sla_percent": 98, "future_field": true}`
	resp2, err := ts.Client().Post(ts.URL+"/v1/recommendations", "application/json", strings.NewReader(tolerant))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode == http.StatusBadRequest {
		t.Fatal("top-level unknown field rejected; only the solver object is strict")
	}
}

// TestSolverContradictionRejected: flat and nested strategies that
// disagree are refused with a problem response naming both spellings.
func TestSolverContradictionRejected(t *testing.T) {
	_, client, _ := newTestServer(t)
	req := caseStudyWire()
	req.Strategy = optimize.StrategyPruned
	req.Solver = &SolverConfigDTO{Strategy: optimize.StrategyBeam}
	_, err := client.Recommend(context.Background(), req)
	apiErr, ok := err.(*APIError)
	if !ok {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.Status != http.StatusUnprocessableEntity || apiErr.Code != CodeInvalidRequest {
		t.Fatalf("problem = %d/%s, want 422/%s", apiErr.Status, apiErr.Code, CodeInvalidRequest)
	}
	if !strings.Contains(apiErr.Detail, "contradicts") {
		t.Fatalf("detail %q does not explain the contradiction", apiErr.Detail)
	}
}

// TestRecommendAnytimeEndToEnd drives the anytime lane through the
// full HTTP surface: the nested spec selects the strategy, and the
// response's search stats carry the certificate — including the
// explicit optimal/budget_exhausted booleans that omitempty would
// otherwise swallow.
func TestRecommendAnytimeEndToEnd(t *testing.T) {
	_, client, _ := newTestServer(t)
	ctx := context.Background()

	exact, err := client.Recommend(ctx, caseStudyWire())
	if err != nil {
		t.Fatal(err)
	}

	for _, strategy := range []string{optimize.StrategyBeam, optimize.StrategyLDS, optimize.StrategyBounded} {
		req := caseStudyWire()
		req.Solver = &SolverConfigDTO{Strategy: strategy, BudgetMS: 60_000}
		resp, err := client.Recommend(ctx, req)
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		if resp.Search.Strategy != strategy || !resp.Search.Approximate {
			t.Fatalf("%s: search stats %+v", strategy, resp.Search)
		}
		if resp.Search.BoundUSD == nil || resp.Search.Optimal == nil || resp.Search.BudgetExhausted == nil {
			t.Fatalf("%s: certificate members missing: %+v", strategy, resp.Search)
		}
		if resp.Search.Gap != nil && *resp.Search.Gap < 0 {
			t.Fatalf("%s: negative gap %v", strategy, *resp.Search.Gap)
		}
		// The case-study space is tiny: every anytime strategy closes it
		// and must agree with the exact recommendation.
		if resp.BestOption != exact.BestOption {
			t.Fatalf("%s: best option %d, exact %d", strategy, resp.BestOption, exact.BestOption)
		}
		if *resp.Search.Optimal {
			if resp.Search.Gap == nil || *resp.Search.Gap != 0 {
				t.Fatalf("%s: optimal with gap %v", strategy, resp.Search.Gap)
			}
		}
	}
}

// TestJobCarriesSolverSpec: a nested spec rides through the async
// surface — the journaled request, the progress stream and the final
// result all see the anytime strategy.
func TestJobCarriesSolverSpec(t *testing.T) {
	_, client, _ := newTestServer(t)
	ctx := context.Background()

	req := caseStudyWire()
	req.Solver = &SolverConfigDTO{Strategy: optimize.StrategyBeam, BeamWidth: 16}
	job, err := client.SubmitJob(ctx, JobKindRecommend, req)
	if err != nil {
		t.Fatal(err)
	}
	status, err := client.WaitJob(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != "done" {
		t.Fatalf("job finished as %s (%+v)", status.State, status.Error)
	}
	rec, err := status.Recommendation()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Search.Strategy != optimize.StrategyBeam || !rec.Search.Approximate {
		t.Fatalf("job result search stats %+v, want an approximate beam run", rec.Search)
	}
}

// TestClientSolverOptions: WithSolverConfig, WithBudget and the
// delegating WithStrategy compose into one default spec, applied only
// when a request makes no solver choice of its own.
func TestClientSolverOptions(t *testing.T) {
	ts, _, _ := newTestServer(t)
	client, err := NewClient(ts.URL, ts.Client(),
		WithStrategy(optimize.StrategyBeam),
		WithBudget(time.Minute, 0))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	resp, err := client.Recommend(ctx, caseStudyWire())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Search.Strategy != optimize.StrategyBeam || !resp.Search.Approximate {
		t.Fatalf("client solver default not applied: %+v", resp.Search)
	}

	// A per-request choice — even the deprecated flat spelling — wins
	// wholesale over the client default.
	req := caseStudyWire()
	req.Strategy = optimize.StrategyPruned
	resp, err = client.Recommend(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Search.Strategy != optimize.StrategyPruned || resp.Search.Approximate {
		t.Fatalf("per-request flat strategy lost to the client default: %+v", resp.Search)
	}

	nested := caseStudyWire()
	nested.Solver = &SolverConfigDTO{Strategy: optimize.StrategyLDS}
	resp, err = client.Recommend(ctx, nested)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Search.Strategy != optimize.StrategyLDS {
		t.Fatalf("per-request nested strategy lost to the client default: %+v", resp.Search)
	}
}

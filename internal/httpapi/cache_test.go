package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"uptimebroker/internal/broker"
	"uptimebroker/internal/catalog"
	"uptimebroker/internal/reccache"
	"uptimebroker/internal/telemetry"
)

// newCachedTestServer is newTestServer with a result cache behind the
// engine.
func newCachedTestServer(t *testing.T) (*httptest.Server, *Client, *telemetry.Store) {
	t.Helper()
	cat := catalog.Default()
	store := telemetry.NewStore()
	engine, err := broker.New(cat, broker.TelemetryParams{
		Store:            store,
		Fallback:         broker.CatalogParams{Catalog: cat},
		MinExposureYears: 0.5,
	}, broker.WithResultCache(reccache.New(reccache.Config{})))
	if err != nil {
		t.Fatalf("broker.New: %v", err)
	}
	srv, err := NewServer(engine, store, nil)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return ts, client, store
}

// postJSON performs one raw POST so the test can inspect response
// headers the typed client does not surface.
func postJSON(t *testing.T, ts *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	t.Cleanup(func() { _ = resp.Body.Close() })
	return resp
}

func TestRecommendXCacheHeader(t *testing.T) {
	ts, _, _ := newCachedTestServer(t)
	req := caseStudyWire()

	first := postJSON(t, ts, "/v1/recommendations", req)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", first.StatusCode)
	}
	if got := first.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first X-Cache = %q, want miss", got)
	}
	var firstBody RecommendationResponse
	if err := json.NewDecoder(first.Body).Decode(&firstBody); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if firstBody.Cache != "miss" {
		t.Fatalf("first body cache = %q, want miss", firstBody.Cache)
	}

	second := postJSON(t, ts, "/v2/recommendations", req)
	if got := second.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second X-Cache = %q, want hit (v1 and v2 share the cache)", got)
	}
	var secondBody RecommendationResponse
	if err := json.NewDecoder(second.Body).Decode(&secondBody); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if secondBody.Cache != "hit" {
		t.Fatalf("second body cache = %q, want hit", secondBody.Cache)
	}
	if secondBody.BestOption != firstBody.BestOption || len(secondBody.Cards) != len(firstBody.Cards) {
		t.Fatal("cached response diverges from the computed one")
	}
}

func TestParetoXCacheHeader(t *testing.T) {
	ts, _, _ := newCachedTestServer(t)
	req := caseStudyWire()
	if got := postJSON(t, ts, "/v1/pareto", req).Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first pareto X-Cache = %q, want miss", got)
	}
	if got := postJSON(t, ts, "/v1/pareto", req).Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second pareto X-Cache = %q, want hit", got)
	}
}

func TestScenarioRecommendXCacheHeader(t *testing.T) {
	ts, _, _ := newCachedTestServer(t)
	first := postJSON(t, ts, "/v1/scenarios/casestudy/recommendation", nil)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", first.StatusCode)
	}
	if got := first.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first scenario X-Cache = %q, want miss", got)
	}
	if got := postJSON(t, ts, "/v1/scenarios/casestudy/recommendation", nil).Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second scenario X-Cache = %q, want hit", got)
	}
}

func TestUncachedServerOmitsCacheSurfaces(t *testing.T) {
	ts, client, _ := newTestServer(t)
	resp := postJSON(t, ts, "/v1/recommendations", caseStudyWire())
	if got := resp.Header.Get("X-Cache"); got != "" {
		t.Fatalf("uncached server sent X-Cache %q", got)
	}
	var body RecommendationResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if body.Cache != "" {
		t.Fatalf("uncached server stamped cache %q", body.Cache)
	}
	m, err := client.Metrics(context.Background())
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if m.Cache != nil {
		t.Fatal("uncached server reported cache metrics")
	}
}

// TestMetricsEndpointCounters is the acceptance-criteria assertion
// for the operational surface: hit, miss and inflight counters are
// visible on the metrics endpoint.
func TestMetricsEndpointCounters(t *testing.T) {
	_, client, _ := newCachedTestServer(t)
	req := caseStudyWire()
	ctx := context.Background()

	if _, err := client.Recommend(ctx, req); err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	if _, err := client.Recommend(ctx, req); err != nil {
		t.Fatalf("Recommend: %v", err)
	}

	m, err := client.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if m.Cache == nil {
		t.Fatal("cached server reported no cache metrics")
	}
	if m.Cache.Misses != 1 || m.Cache.Hits != 1 {
		t.Fatalf("cache counters = %+v, want 1 miss and 1 hit", *m.Cache)
	}
	if m.Cache.Inflight != 0 {
		t.Fatalf("inflight = %d after synchronous calls, want 0", m.Cache.Inflight)
	}
	if m.Cache.Entries != 1 || m.Cache.Bytes <= 0 {
		t.Fatalf("occupancy = %d entries / %d bytes, want one sized entry", m.Cache.Entries, m.Cache.Bytes)
	}
	if m.Cache.HitRate != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", m.Cache.HitRate)
	}
	if m.ParamsEpoch == nil {
		t.Fatal("telemetry-backed engine should expose a params epoch")
	}
}

// TestObservationInvalidatesCache closes the telemetry loop over the
// wire: recording an outage bumps the params epoch, which re-addresses
// every cached recommendation.
func TestObservationInvalidatesCache(t *testing.T) {
	ts, client, _ := newCachedTestServer(t)
	req := caseStudyWire()
	ctx := context.Background()

	postJSON(t, ts, "/v1/recommendations", req)
	before, err := client.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}

	obs := Observation{Provider: catalog.ProviderSoftLayerSim, Class: "vm.virtualized", Kind: ObservationOutage, Seconds: 120}
	if err := client.Observe(ctx, obs); err != nil {
		t.Fatalf("Observe: %v", err)
	}

	after, err := client.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if *after.ParamsEpoch <= *before.ParamsEpoch {
		t.Fatalf("params epoch %d -> %d, want a bump", *before.ParamsEpoch, *after.ParamsEpoch)
	}
	if got := postJSON(t, ts, "/v1/recommendations", req).Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("post-observation X-Cache = %q, want miss (epoch invalidation)", got)
	}
}

// TestJobResultCarriesCacheStatus pins the async path: a recommend
// job's persisted result reports how the cache answered it.
func TestJobResultCarriesCacheStatus(t *testing.T) {
	_, client, _ := newCachedTestServer(t)
	req := caseStudyWire()
	ctx := context.Background()

	runJob := func() RecommendationResponse {
		t.Helper()
		snap, err := client.SubmitJob(ctx, JobKindRecommend, req)
		if err != nil {
			t.Fatalf("SubmitJob: %v", err)
		}
		status, err := client.WaitJob(ctx, snap.ID)
		if err != nil {
			t.Fatalf("WaitJob: %v", err)
		}
		rec, err := status.Recommendation()
		if err != nil {
			t.Fatalf("Recommendation: %v", err)
		}
		return rec
	}

	if got := runJob().Cache; got != "miss" {
		t.Fatalf("first job cache = %q, want miss", got)
	}
	if got := runJob().Cache; got != "hit" {
		t.Fatalf("second job cache = %q, want hit", got)
	}
}

package httpapi

import (
	"context"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Middleware wraps an http.Handler with one cross-cutting concern.
// Chain composes them; each stays independently testable.
type Middleware func(http.Handler) http.Handler

// Chain applies the middlewares so that the first argument is the
// outermost: Chain(h, a, b) serves a(b(h)).
func Chain(h http.Handler, mws ...Middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// requestIDKey is the context key carrying the request's ID.
type requestIDKey struct{}

// RequestIDHeader carries the request ID on responses (and is
// honored on requests, letting callers propagate their own IDs).
const RequestIDHeader = "X-Request-Id"

// RequestIDFrom returns the request's assigned ID, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// RequestID assigns each request a monotonically increasing ID
// (unless the caller supplied one), exposes it via RequestIDFrom, and
// echoes it in the response headers.
func RequestID() Middleware {
	var seq atomic.Uint64
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := r.Header.Get(RequestIDHeader)
			if id == "" {
				id = fmt.Sprintf("req-%08d", seq.Add(1))
			}
			w.Header().Set(RequestIDHeader, id)
			next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id)))
		})
	}
}

// statusRecorder captures the response status for the timing log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so wrapping a handler in
// Logging does not hide its streaming ability — the SSE route
// type-asserts http.Flusher and would silently degrade to its
// polling fallback otherwise.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController pass-through.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// Logging logs one line per request with method, path, status and
// wall time. A nil logger disables it without breaking the chain.
func Logging(logger *log.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		if logger == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rec := &statusRecorder{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(rec, r)
			if rec.status == 0 {
				rec.status = http.StatusOK
			}
			logger.Printf("req=%s %s %s -> %d (%s)",
				RequestIDFrom(r.Context()), r.Method, r.URL.Path, rec.status, time.Since(start).Round(time.Microsecond))
		})
	}
}

// Recover converts handler panics into a problem+json 500 instead of
// a dropped connection, logging the panic value.
func Recover(logger *log.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				if rec := recover(); rec != nil {
					if logger != nil {
						logger.Printf("req=%s PANIC %s %s: %v", RequestIDFrom(r.Context()), r.Method, r.URL.Path, rec)
					}
					p := NewProblem(CodeInternal, http.StatusInternalServerError, "internal error")
					p.RequestID = RequestIDFrom(r.Context())
					writeProblem(w, p)
				}
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// MaxBody caps request body sizes before the handlers decode them.
func MaxBody(n int64) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Body != nil {
				r.Body = http.MaxBytesReader(w, r.Body, n)
			}
			next.ServeHTTP(w, r)
		})
	}
}

// tokenBucket is a minimal thread-safe token bucket.
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	burst  float64
	rate   float64 // tokens per second
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate float64, burst int, now func() time.Time) *tokenBucket {
	if now == nil {
		now = time.Now
	}
	b := &tokenBucket{tokens: float64(burst), burst: float64(burst), rate: rate, now: now}
	b.last = now()
	return b
}

// allow consumes one token if available.
func (b *tokenBucket) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.now()
	b.tokens += b.rate * t.Sub(b.last).Seconds()
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = t
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// exempt bypasses a middleware for a set of exact paths.
func exempt(mw Middleware, paths ...string) Middleware {
	return func(next http.Handler) http.Handler {
		wrapped := mw(next)
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			for _, path := range paths {
				if r.URL.Path == path {
					next.ServeHTTP(w, r)
					return
				}
			}
			wrapped.ServeHTTP(w, r)
		})
	}
}

// retryAfterSeconds renders a wait duration as a Retry-After header
// value: whole seconds rounded up, never below 1 (RFC 9110 allows 0,
// but a 0 invites an immediate identical retry).
func retryAfterSeconds(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// rateRetryAfter is the Retry-After for a drained token bucket: the
// time one token takes to refill at the configured rate.
func rateRetryAfter(rate float64) string {
	return retryAfterSeconds(time.Duration(float64(time.Second) / rate))
}

// RateLimit rejects requests beyond rate requests/second (bucket
// depth burst) with a rate_limited problem. rate <= 0 disables the
// limiter.
func RateLimit(rate float64, burst int) Middleware {
	return rateLimitClock(rate, burst, nil)
}

// clientIP extracts the requesting client's address. Without
// trustProxy it is strictly the connection's remote host — request
// headers are attacker-controlled and must not mint rate-limit
// buckets. With trustProxy (the broker sits behind a proxy that
// appends the real client to X-Forwarded-For) it is the *rightmost*
// XFF entry: the one written by the trusted hop, where the leftmost
// entries are whatever the client claimed.
func clientIP(r *http.Request, trustProxy bool) string {
	if trustProxy {
		if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
			if i := strings.LastIndexByte(xff, ','); i >= 0 {
				xff = xff[i+1:]
			}
			if ip := strings.TrimSpace(xff); ip != "" {
				return ip
			}
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// Per-client limiter housekeeping: buckets untouched for the idle TTL
// are dropped (they have refilled to their burst, so eviction loses
// nothing), checked every sweepEvery requests so the map cannot grow
// with one entry per client that ever connected.
const (
	clientIdleTTL    = 5 * time.Minute
	clientSweepEvery = 256
)

// clientBuckets keys token buckets by client IP.
type clientBuckets struct {
	mu      sync.Mutex
	rate    float64
	burst   int
	now     func() time.Time
	buckets map[string]*tokenBucket
	ops     int
}

func newClientBuckets(rate float64, burst int, now func() time.Time) *clientBuckets {
	if now == nil {
		now = time.Now
	}
	return &clientBuckets{rate: rate, burst: burst, now: now, buckets: make(map[string]*tokenBucket)}
}

// allow consumes one token from the client's bucket, creating it on
// first sight and sweeping idle buckets on a cadence.
func (c *clientBuckets) allow(ip string) bool {
	c.mu.Lock()
	c.ops++
	if c.ops%clientSweepEvery == 0 {
		c.sweepLocked()
	}
	b, ok := c.buckets[ip]
	if !ok {
		b = newTokenBucket(c.rate, c.burst, c.now)
		c.buckets[ip] = b
	}
	c.mu.Unlock()
	return b.allow()
}

// sweepLocked evicts buckets idle past the TTL.
func (c *clientBuckets) sweepLocked() {
	cutoff := c.now().Add(-clientIdleTTL)
	for ip, b := range c.buckets {
		b.mu.Lock()
		idle := b.last.Before(cutoff)
		b.mu.Unlock()
		if idle {
			delete(c.buckets, ip)
		}
	}
}

// size reports the live bucket count (for tests and metrics).
func (c *clientBuckets) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.buckets)
}

// PerClientRateLimit rejects each client exceeding rate
// requests/second (bucket depth burst) with a rate_limited problem,
// keying buckets on the client IP. It isolates tenants from one
// another — one chatty client exhausts its own bucket, not the
// shared one — and composes with the global RateLimit, which stays
// the overall cap. rate <= 0 disables it. trustProxy keys on the
// rightmost X-Forwarded-For entry instead of the connection address;
// enable it only when a trusted proxy fronts the broker, since a
// directly-connected client could otherwise forge a fresh "IP" per
// request and never be limited.
func PerClientRateLimit(rate float64, burst int, trustProxy bool) Middleware {
	return perClientRateLimitClock(rate, burst, trustProxy, nil)
}

// perClientRateLimitClock is PerClientRateLimit with an injectable
// clock for tests.
func perClientRateLimitClock(rate float64, burst int, trustProxy bool, now func() time.Time) Middleware {
	if rate <= 0 {
		return func(next http.Handler) http.Handler { return next }
	}
	if burst < 1 {
		burst = 1
	}
	return perClientRateLimitBuckets(newClientBuckets(rate, burst, now), trustProxy)
}

// perClientRateLimitBuckets is the limiter over a caller-held bucket
// map — NewServer holds the map itself so its occupancy can feed the
// ratelimit_client_buckets gauge.
func perClientRateLimitBuckets(buckets *clientBuckets, trustProxy bool) Middleware {
	rate := buckets.rate
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ip := clientIP(r, trustProxy)
			if !buckets.allow(ip) {
				p := NewProblem(CodeRateLimited, http.StatusTooManyRequests,
					fmt.Sprintf("per-client rate limit of %g requests/second exceeded", rate))
				p.RequestID = RequestIDFrom(r.Context())
				w.Header().Set("Retry-After", rateRetryAfter(rate))
				writeProblem(w, p)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

// rateLimitClock is RateLimit with an injectable clock for tests.
func rateLimitClock(rate float64, burst int, now func() time.Time) Middleware {
	return func(next http.Handler) http.Handler {
		if rate <= 0 {
			return next
		}
		if burst < 1 {
			burst = 1
		}
		bucket := newTokenBucket(rate, burst, now)
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if !bucket.allow() {
				p := NewProblem(CodeRateLimited, http.StatusTooManyRequests,
					fmt.Sprintf("rate limit of %g requests/second exceeded", rate))
				p.RequestID = RequestIDFrom(r.Context())
				w.Header().Set("Retry-After", rateRetryAfter(rate))
				writeProblem(w, p)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

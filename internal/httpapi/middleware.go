package httpapi

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Middleware wraps an http.Handler with one cross-cutting concern.
// Chain composes them; each stays independently testable.
type Middleware func(http.Handler) http.Handler

// Chain applies the middlewares so that the first argument is the
// outermost: Chain(h, a, b) serves a(b(h)).
func Chain(h http.Handler, mws ...Middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// requestIDKey is the context key carrying the request's ID.
type requestIDKey struct{}

// RequestIDHeader carries the request ID on responses (and is
// honored on requests, letting callers propagate their own IDs).
const RequestIDHeader = "X-Request-Id"

// RequestIDFrom returns the request's assigned ID, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// RequestID assigns each request a monotonically increasing ID
// (unless the caller supplied one), exposes it via RequestIDFrom, and
// echoes it in the response headers.
func RequestID() Middleware {
	var seq atomic.Uint64
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := r.Header.Get(RequestIDHeader)
			if id == "" {
				id = fmt.Sprintf("req-%08d", seq.Add(1))
			}
			w.Header().Set(RequestIDHeader, id)
			next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id)))
		})
	}
}

// statusRecorder captures the response status for the timing log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Logging logs one line per request with method, path, status and
// wall time. A nil logger disables it without breaking the chain.
func Logging(logger *log.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		if logger == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rec := &statusRecorder{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(rec, r)
			if rec.status == 0 {
				rec.status = http.StatusOK
			}
			logger.Printf("req=%s %s %s -> %d (%s)",
				RequestIDFrom(r.Context()), r.Method, r.URL.Path, rec.status, time.Since(start).Round(time.Microsecond))
		})
	}
}

// Recover converts handler panics into a problem+json 500 instead of
// a dropped connection, logging the panic value.
func Recover(logger *log.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				if rec := recover(); rec != nil {
					if logger != nil {
						logger.Printf("req=%s PANIC %s %s: %v", RequestIDFrom(r.Context()), r.Method, r.URL.Path, rec)
					}
					p := NewProblem(CodeInternal, http.StatusInternalServerError, "internal error")
					p.RequestID = RequestIDFrom(r.Context())
					writeProblem(w, p)
				}
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// MaxBody caps request body sizes before the handlers decode them.
func MaxBody(n int64) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Body != nil {
				r.Body = http.MaxBytesReader(w, r.Body, n)
			}
			next.ServeHTTP(w, r)
		})
	}
}

// tokenBucket is a minimal thread-safe token bucket.
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	burst  float64
	rate   float64 // tokens per second
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate float64, burst int, now func() time.Time) *tokenBucket {
	if now == nil {
		now = time.Now
	}
	b := &tokenBucket{tokens: float64(burst), burst: float64(burst), rate: rate, now: now}
	b.last = now()
	return b
}

// allow consumes one token if available.
func (b *tokenBucket) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.now()
	b.tokens += b.rate * t.Sub(b.last).Seconds()
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = t
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// exempt bypasses a middleware for one exact path.
func exempt(path string, mw Middleware) Middleware {
	return func(next http.Handler) http.Handler {
		wrapped := mw(next)
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == path {
				next.ServeHTTP(w, r)
				return
			}
			wrapped.ServeHTTP(w, r)
		})
	}
}

// RateLimit rejects requests beyond rate requests/second (bucket
// depth burst) with a rate_limited problem. rate <= 0 disables the
// limiter.
func RateLimit(rate float64, burst int) Middleware {
	return rateLimitClock(rate, burst, nil)
}

// rateLimitClock is RateLimit with an injectable clock for tests.
func rateLimitClock(rate float64, burst int, now func() time.Time) Middleware {
	return func(next http.Handler) http.Handler {
		if rate <= 0 {
			return next
		}
		if burst < 1 {
			burst = 1
		}
		bucket := newTokenBucket(rate, burst, now)
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if !bucket.allow() {
				p := NewProblem(CodeRateLimited, http.StatusTooManyRequests,
					fmt.Sprintf("rate limit of %g requests/second exceeded", rate))
				p.RequestID = RequestIDFrom(r.Context())
				w.Header().Set("Retry-After", "1")
				writeProblem(w, p)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

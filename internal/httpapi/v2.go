package httpapi

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"uptimebroker/internal/broker"
	"uptimebroker/internal/jobs"
)

// Job kinds accepted by POST /v2/jobs.
const (
	JobKindRecommend = "recommend"
	JobKindPareto    = "pareto"
)

// JobRequest is the body of POST /v2/jobs: which brokerage flow to
// run asynchronously, and its request.
type JobRequest struct {
	// Kind is "recommend" or "pareto".
	Kind string `json:"kind"`

	// Request is the recommendation request the job runs.
	Request RecommendationRequest `json:"request"`
}

// JobErrorDTO is the failure recorded on a failed (or cancelled) job.
type JobErrorDTO struct {
	// Code is the stable machine-readable failure class, mirroring
	// the problem codes of the synchronous routes.
	Code string `json:"code"`

	// Detail is the human-readable failure.
	Detail string `json:"detail"`
}

// JobDTO is the wire form of one async job.
type JobDTO struct {
	// ID addresses the job under /v2/jobs/{id}.
	ID string `json:"id"`

	// Kind echoes the submitted kind.
	Kind string `json:"kind"`

	// State is queued, running, done, failed or cancelled.
	State string `json:"state"`

	// CreatedAt, StartedAt and FinishedAt stamp the transitions
	// (RFC 3339); started_at/finished_at are omitted until reached.
	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`

	// Result carries the job's payload once state is done: a
	// RecommendationResponse for recommend jobs, []OptionCardDTO for
	// pareto jobs.
	Result any `json:"result,omitempty"`

	// Error describes the failure once state is failed or cancelled.
	Error *JobErrorDTO `json:"error,omitempty"`
}

// JobListResponse is the body of GET /v2/jobs.
type JobListResponse struct {
	// Jobs lists every retained job, newest first, without results
	// (poll the individual job for its payload).
	Jobs []JobDTO `json:"jobs"`

	// Metrics are the job subsystem's operational counters.
	Metrics jobs.Metrics `json:"metrics"`
}

// fromJob converts a job snapshot to wire form. withResult controls
// whether the (potentially large) result payload is included.
func fromJob(snap jobs.Snapshot, withResult bool) JobDTO {
	dto := JobDTO{
		ID:        snap.ID,
		Kind:      snap.Kind,
		State:     string(snap.State),
		CreatedAt: snap.CreatedAt,
	}
	if !snap.StartedAt.IsZero() {
		t := snap.StartedAt
		dto.StartedAt = &t
	}
	if !snap.FinishedAt.IsZero() {
		t := snap.FinishedAt
		dto.FinishedAt = &t
	}
	if withResult && snap.Result != nil {
		dto.Result = snap.Result
	}
	if snap.Err != nil {
		code := CodeInvalidRequest
		switch {
		case errors.Is(snap.Err, context.Canceled):
			code = CodeCancelled
		case errors.Is(snap.Err, jobs.ErrPanic), errors.Is(snap.Err, jobs.ErrClosed):
			// Server faults, not request errors.
			code = CodeInternal
		}
		dto.Error = &JobErrorDTO{Code: code, Detail: snap.Err.Error()}
	}
	return dto
}

// handleJobSubmit implements POST /v2/jobs: 202 Accepted with the
// queued job and a Location header for polling.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if !s.decodeBody(w, r, &req) {
		return
	}

	var fn jobs.Fn
	switch req.Kind {
	case JobKindRecommend:
		breq := req.Request.ToBroker()
		fn = func(ctx context.Context) (any, error) {
			rec, err := s.engine.Recommend(ctx, breq)
			if err != nil {
				return nil, err
			}
			return FromRecommendation(rec), nil
		}
	case JobKindPareto:
		breq := req.Request.ToBroker()
		fn = func(ctx context.Context) (any, error) {
			front, err := s.engine.Pareto(ctx, breq)
			if err != nil {
				return nil, err
			}
			out := make([]OptionCardDTO, len(front))
			for i, c := range front {
				out[i] = fromCard(c)
			}
			return out, nil
		}
	default:
		s.problem(w, r, CodeInvalidRequest, http.StatusBadRequest,
			fmt.Sprintf("unknown job kind %q (want %q or %q)", req.Kind, JobKindRecommend, JobKindPareto))
		return
	}

	snap, err := s.jobs.Submit(req.Kind, fn)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		s.problem(w, r, CodeQueueFull, http.StatusServiceUnavailable, "job queue is at capacity; retry later")
		return
	case errors.Is(err, jobs.ErrClosed):
		s.problem(w, r, CodeUnavailable, http.StatusServiceUnavailable, "server is shutting down")
		return
	case err != nil:
		s.problem(w, r, CodeInternal, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Location", "/v2/jobs/"+snap.ID)
	s.writeJSON(w, r, http.StatusAccepted, fromJob(snap, false))
}

// handleJobGet implements GET /v2/jobs/{id}.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	snap, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		s.problem(w, r, CodeJobNotFound, http.StatusNotFound, fmt.Sprintf("no job %q (it may have expired)", r.PathValue("id")))
		return
	}
	s.writeJSON(w, r, http.StatusOK, fromJob(snap, true))
}

// handleJobCancel implements DELETE /v2/jobs/{id}: cancels a queued
// or running job. Cancelling an already-finished job is a 409.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	snap, err := s.jobs.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		s.problem(w, r, CodeJobNotFound, http.StatusNotFound, fmt.Sprintf("no job %q (it may have expired)", r.PathValue("id")))
		return
	case errors.Is(err, jobs.ErrFinished):
		s.problem(w, r, CodeJobFinished, http.StatusConflict,
			fmt.Sprintf("job %s already finished as %s", snap.ID, snap.State))
		return
	case err != nil:
		s.problem(w, r, CodeInternal, http.StatusInternalServerError, err.Error())
		return
	}
	s.writeJSON(w, r, http.StatusOK, fromJob(snap, false))
}

// handleJobList implements GET /v2/jobs.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	snaps := s.jobs.List()
	out := make([]JobDTO, len(snaps))
	for i, snap := range snaps {
		out[i] = fromJob(snap, false)
	}
	s.writeJSON(w, r, http.StatusOK, JobListResponse{Jobs: out, Metrics: s.jobs.Metrics()})
}

// BatchRequest is the body of POST /v2/recommendations/batch.
type BatchRequest struct {
	// Requests are the scenarios to price; they are fanned out across
	// the engine's worker pool and computed concurrently.
	Requests []RecommendationRequest `json:"requests"`
}

// BatchItemDTO is one request's outcome in a batch response. Exactly
// one of Recommendation and Error is set.
type BatchItemDTO struct {
	// Index is the request's position in the submitted slice.
	Index int `json:"index"`

	// Recommendation is the successful result.
	Recommendation *RecommendationResponse `json:"recommendation,omitempty"`

	// Error is the per-item failure; other items are unaffected.
	Error *JobErrorDTO `json:"error,omitempty"`
}

// BatchResponse is the body of a batch recommendation reply.
type BatchResponse struct {
	// Results has one entry per submitted request, in order.
	Results []BatchItemDTO `json:"results"`

	// Succeeded and Failed count the split.
	Succeeded int `json:"succeeded"`
	Failed    int `json:"failed"`
}

// maxBatchSize bounds one batch call; larger workloads should go
// through the async job surface one scenario at a time.
const maxBatchSize = 256

// handleBatch implements POST /v2/recommendations/batch with
// partial-failure semantics: the response is 200 whenever the batch
// itself was well-formed, and each item carries its own error.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Requests) == 0 {
		s.problem(w, r, CodeInvalidRequest, http.StatusBadRequest, "batch needs at least one request")
		return
	}
	if len(req.Requests) > maxBatchSize {
		s.problem(w, r, CodeInvalidRequest, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds the %d-request limit", len(req.Requests), maxBatchSize))
		return
	}

	breqs := make([]broker.Request, len(req.Requests))
	for i, rr := range req.Requests {
		breqs[i] = rr.ToBroker()
	}
	items := s.engine.RecommendBatch(r.Context(), breqs)

	resp := BatchResponse{Results: make([]BatchItemDTO, len(items))}
	for i, item := range items {
		dto := BatchItemDTO{Index: item.Index}
		if item.Err != nil {
			code := CodeInvalidRequest
			if errors.Is(item.Err, context.Canceled) || errors.Is(item.Err, context.DeadlineExceeded) {
				code = CodeCancelled
			}
			dto.Error = &JobErrorDTO{Code: code, Detail: item.Err.Error()}
			resp.Failed++
		} else {
			rr := FromRecommendation(item.Rec)
			dto.Recommendation = &rr
			resp.Succeeded++
		}
		resp.Results[i] = dto
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"uptimebroker/internal/broker"
	"uptimebroker/internal/jobs"
	"uptimebroker/internal/jobstore"
)

// Job kinds accepted by POST /v2/jobs.
const (
	JobKindRecommend = "recommend"
	JobKindPareto    = "pareto"
)

// JobRequest is the body of POST /v2/jobs: which brokerage flow to
// run asynchronously, and its request.
type JobRequest struct {
	// Kind is "recommend" or "pareto".
	Kind string `json:"kind"`

	// Request is the recommendation request the job runs.
	Request RecommendationRequest `json:"request"`
}

// JobErrorDTO is the failure recorded on a failed (or cancelled) job.
type JobErrorDTO struct {
	// Code is the stable machine-readable failure class, mirroring
	// the problem codes of the synchronous routes.
	Code string `json:"code"`

	// Detail is the human-readable failure.
	Detail string `json:"detail"`
}

// JobDTO is the wire form of one async job.
type JobDTO struct {
	// ID addresses the job under /v2/jobs/{id}.
	ID string `json:"id"`

	// Kind echoes the submitted kind.
	Kind string `json:"kind"`

	// State is queued, running, done, failed or cancelled.
	State string `json:"state"`

	// CreatedAt, StartedAt and FinishedAt stamp the transitions
	// (RFC 3339); started_at/finished_at are omitted until reached.
	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`

	// Result carries the job's payload once state is done: a
	// RecommendationResponse for recommend jobs, []OptionCardDTO for
	// pareto jobs.
	Result any `json:"result,omitempty"`

	// Progress reports the enumeration's position once the job's
	// search loops have reported any; absent before that.
	Progress *JobProgressDTO `json:"progress,omitempty"`

	// Error describes the failure once state is failed or cancelled.
	Error *JobErrorDTO `json:"error,omitempty"`
}

// JobProgressDTO is the wire form of a job's live search progress.
type JobProgressDTO struct {
	// Evaluated is how many of the space's candidates have been
	// accounted for (priced or clipped) so far.
	Evaluated int64 `json:"evaluated"`

	// SpaceSize is k^n, the full candidate space.
	SpaceSize int64 `json:"space_size"`

	// Percent is 100 × Evaluated/SpaceSize, clamped to [0, 100].
	Percent float64 `json:"percent"`

	// Strategy is the concrete solver strategy the job's search
	// resolved to, once it has reported one ("auto" requests see the
	// heuristic's pick).
	Strategy string `json:"strategy,omitempty"`
}

// JobListResponse is the body of GET /v2/jobs.
type JobListResponse struct {
	// Jobs lists the retained jobs, newest first, without results
	// (poll the individual job for its payload). With ?limit= it is
	// the first page only.
	Jobs []JobDTO `json:"jobs"`

	// Total counts the jobs matching the filter before pagination.
	Total int `json:"total"`

	// Metrics are the job subsystem's operational counters.
	Metrics jobs.Metrics `json:"metrics"`
}

// fromJob converts a job snapshot to wire form. withResult controls
// whether the (potentially large) result payload is included.
func fromJob(snap jobs.Snapshot, withResult bool) JobDTO {
	dto := JobDTO{
		ID:        snap.ID,
		Kind:      snap.Kind,
		State:     string(snap.State),
		CreatedAt: snap.CreatedAt,
	}
	if !snap.StartedAt.IsZero() {
		t := snap.StartedAt
		dto.StartedAt = &t
	}
	if !snap.FinishedAt.IsZero() {
		t := snap.FinishedAt
		dto.FinishedAt = &t
	}
	if snap.SpaceSize > 0 || snap.Strategy != "" {
		dto.Progress = &JobProgressDTO{
			Evaluated: snap.Evaluated,
			SpaceSize: snap.SpaceSize,
			Percent:   100 * snap.Fraction(),
			Strategy:  snap.Strategy,
		}
	}
	if withResult && snap.Result != nil {
		dto.Result = snap.Result
	}
	if snap.Err != nil {
		code := CodeInvalidRequest
		switch {
		case errors.Is(snap.Err, jobs.ErrRestartLost):
			code = CodeRestartLost
		case errors.Is(snap.Err, context.Canceled):
			code = CodeCancelled
		case errors.Is(snap.Err, jobs.ErrPanic), errors.Is(snap.Err, jobs.ErrClosed):
			// Server faults, not request errors.
			code = CodeInternal
		}
		dto.Error = &JobErrorDTO{Code: code, Detail: snap.Err.Error()}
	}
	return dto
}

// jobFn builds the executable work for one job kind. It is the
// single mapping from persisted (kind, request) pairs to code, used
// both by fresh submissions and by the recovery resolver re-queuing
// journaled jobs after a restart. The returned Fn threads a search
// progress hook from the enumeration loops into the job store.
func (s *Server) jobFn(kind string, req RecommendationRequest) (jobs.Fn, error) {
	breq := req.ToBroker()
	var run func(ctx context.Context) (any, error)
	switch kind {
	case JobKindRecommend:
		run = func(ctx context.Context) (any, error) {
			// The job has no response headers, so the cache disposition
			// travels inside the persisted result instead.
			var cacheStatus string
			ctx = broker.WithCacheReport(ctx, func(st string) { cacheStatus = st })
			rec, err := s.engine.Recommend(ctx, breq)
			if err != nil {
				return nil, err
			}
			resp := FromRecommendation(rec)
			resp.Cache = cacheStatus
			return resp, nil
		}
	case JobKindPareto:
		run = func(ctx context.Context) (any, error) {
			front, err := s.engine.Pareto(ctx, breq)
			if err != nil {
				return nil, err
			}
			out := make([]OptionCardDTO, len(front))
			for i, c := range front {
				out[i] = fromCard(c)
			}
			return out, nil
		}
	default:
		return nil, fmt.Errorf("unknown job kind %q (want %q or %q)", kind, JobKindRecommend, JobKindPareto)
	}
	return func(ctx context.Context) (any, error) {
		jobCtx := ctx
		ctx = broker.WithSearchProgress(ctx, func(evaluated, spaceSize int64) {
			jobs.ReportProgress(jobCtx, evaluated, spaceSize)
		})
		ctx = broker.WithStrategyReport(ctx, func(strategy string) {
			jobs.ReportStrategy(jobCtx, strategy)
		})
		return run(ctx)
	}, nil
}

// jobResolver rebuilds recovered jobs' Fns from their journaled
// payloads; jobs.Open calls it for every job re-queued at startup.
func (s *Server) jobResolver(kind string, payload []byte) (jobs.Fn, error) {
	var req RecommendationRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, fmt.Errorf("decoding persisted %q request: %w", kind, err)
	}
	return s.jobFn(kind, req)
}

// handleJobSubmit implements POST /v2/jobs: 202 Accepted with the
// queued job and a Location header for polling.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if !s.decodeBody(w, r, &req) {
		return
	}

	// Load shedding: refuse work the pool cannot start within the
	// bound instead of queueing it into a wait the client would have
	// timed out of anyway. Retry-After carries the current estimate.
	if s.maxQueueWait > 0 {
		if wait := s.jobs.EstimatedQueueWait(); wait > s.maxQueueWait {
			s.loadShed.Inc()
			w.Header().Set("Retry-After", retryAfterSeconds(wait))
			s.problem(w, r, CodeLoadShed, http.StatusTooManyRequests,
				fmt.Sprintf("estimated queue wait %s exceeds the %s bound; retry later", wait.Round(time.Millisecond), s.maxQueueWait))
			return
		}
	}

	fn, err := s.jobFn(req.Kind, req.Request)
	if err != nil {
		s.problem(w, r, CodeInvalidRequest, http.StatusBadRequest, err.Error())
		return
	}
	// The payload journaled with the job is what the resolver decodes
	// after a restart; an unmarshalable request cannot reach here
	// (decodeBody already parsed it).
	payload, err := json.Marshal(req.Request)
	if err != nil {
		s.problem(w, r, CodeInternal, http.StatusInternalServerError, err.Error())
		return
	}

	snap, err := s.jobs.Submit(req.Kind, payload, fn)
	switch {
	case errors.Is(err, jobstore.ErrDegraded):
		// Fail-stop persistence: the journal cannot record the job, so
		// accepting it would hand out work that vanishes on restart.
		// Synchronous routes keep serving; only submission closes.
		s.problem(w, r, CodeStoreDegraded, http.StatusServiceUnavailable,
			"job store is degraded to read-only after a storage failure; synchronous routes remain available")
		return
	case errors.Is(err, jobs.ErrQueueFull):
		s.problem(w, r, CodeQueueFull, http.StatusServiceUnavailable, "job queue is at capacity; retry later")
		return
	case errors.Is(err, jobs.ErrClosed):
		s.problem(w, r, CodeUnavailable, http.StatusServiceUnavailable, "server is shutting down")
		return
	case err != nil:
		s.problem(w, r, CodeInternal, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Location", "/v2/jobs/"+snap.ID)
	s.writeJSON(w, r, http.StatusAccepted, fromJob(snap, false))
}

// handleJobGet implements GET /v2/jobs/{id}.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	snap, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		s.problem(w, r, CodeJobNotFound, http.StatusNotFound, fmt.Sprintf("no job %q (it may have expired)", r.PathValue("id")))
		return
	}
	s.writeJSON(w, r, http.StatusOK, fromJob(snap, true))
}

// handleJobCancel implements DELETE /v2/jobs/{id}: cancels a queued
// or running job. Cancelling an already-finished job is a 409.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	snap, err := s.jobs.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		s.problem(w, r, CodeJobNotFound, http.StatusNotFound, fmt.Sprintf("no job %q (it may have expired)", r.PathValue("id")))
		return
	case errors.Is(err, jobs.ErrFinished):
		s.problem(w, r, CodeJobFinished, http.StatusConflict,
			fmt.Sprintf("job %s already finished as %s", snap.ID, snap.State))
		return
	case err != nil:
		s.problem(w, r, CodeInternal, http.StatusInternalServerError, err.Error())
		return
	}
	s.writeJSON(w, r, http.StatusOK, fromJob(snap, false))
}

// handleJobList implements GET /v2/jobs with optional ?state=
// filtering and ?limit= pagination, so a freshly recovered store
// holding thousands of journaled jobs does not dump them all on one
// page.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	stateFilter := jobs.State(q.Get("state"))
	switch stateFilter {
	case "", jobs.StateQueued, jobs.StateRunning, jobs.StateDone, jobs.StateFailed, jobs.StateCancelled:
	default:
		s.problem(w, r, CodeInvalidRequest, http.StatusBadRequest,
			fmt.Sprintf("unknown state %q (want queued, running, done, failed or cancelled)", string(stateFilter)))
		return
	}
	limit := 0
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 1 {
			s.problem(w, r, CodeInvalidRequest, http.StatusBadRequest,
				fmt.Sprintf("limit %q is not a positive integer", ls))
			return
		}
		limit = n
	}

	snaps := s.jobs.List()
	out := make([]JobDTO, 0, len(snaps))
	for _, snap := range snaps {
		if stateFilter != "" && snap.State != stateFilter {
			continue
		}
		out = append(out, fromJob(snap, false))
	}
	total := len(out)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	s.writeJSON(w, r, http.StatusOK, JobListResponse{Jobs: out, Total: total, Metrics: s.jobs.Metrics()})
}

// handleJobEvents implements GET /v2/jobs/{id}/events.
//
// With "Accept: text/event-stream" it streams Server-Sent Events: a
// "state" event on every lifecycle transition, "progress" events as
// the enumeration advances, and a final "state" event (including the
// error for failed/cancelled jobs) when the job finishes, after
// which the stream closes. While the job is quiet the stream carries
// ": ping" comment frames on a timer (WithSSEPingInterval, default
// 15s) so idle proxies do not reap a connection that is merely
// waiting on a long enumeration; SSE parsers discard comment lines
// by specification. Event payloads never embed the result — one can
// be arbitrarily large, and the progress channel must stay cheap —
// so clients fetch GET /v2/jobs/{id} once the terminal event
// arrives. Clients that cannot speak SSE get a polling fallback: the
// current job snapshot (sans result) as a single JSON document.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, stop, err := s.jobs.Watch(id)
	if err != nil {
		s.problem(w, r, CodeJobNotFound, http.StatusNotFound, fmt.Sprintf("no job %q (it may have expired)", id))
		return
	}
	defer stop()

	flusher, canFlush := w.(http.Flusher)
	if !canFlush || !acceptsEventStream(r) {
		// Polling fallback. The first channel delivery is the current
		// snapshot and is already buffered.
		snap := <-ch
		s.writeJSON(w, r, http.StatusOK, fromJob(snap, false))
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// A nil channel (pings disabled) blocks forever in the select.
	var pingC <-chan time.Time
	var ping *time.Ticker
	if s.ssePing > 0 {
		ping = time.NewTicker(s.ssePing)
		defer ping.Stop()
		pingC = ping.C
	}

	lastState := ""
	seq := 0
	for {
		select {
		case snap, ok := <-ch:
			if !ok {
				return
			}
			name := "progress"
			if string(snap.State) != lastState {
				name = "state"
				lastState = string(snap.State)
			}
			payload, err := json.Marshal(fromJob(snap, false))
			if err != nil {
				s.logf("req=%s encoding SSE event for %s: %v", RequestIDFrom(r.Context()), id, err)
				return
			}
			seq++
			if _, err := fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", name, seq, payload); err != nil {
				return // client went away
			}
			flusher.Flush()
			if snap.State.Terminal() {
				return
			}
			if ping != nil {
				ping.Reset(s.ssePing)
			}
		case <-pingC:
			if _, err := io.WriteString(w, ": ping\n\n"); err != nil {
				return // client went away
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// acceptsEventStream reports whether the request negotiates SSE.
func acceptsEventStream(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// BatchRequest is the body of POST /v2/recommendations/batch.
type BatchRequest struct {
	// Requests are the scenarios to price; they are fanned out across
	// the engine's worker pool and computed concurrently.
	Requests []RecommendationRequest `json:"requests"`
}

// BatchItemDTO is one request's outcome in a batch response. Exactly
// one of Recommendation and Error is set.
type BatchItemDTO struct {
	// Index is the request's position in the submitted slice.
	Index int `json:"index"`

	// Recommendation is the successful result.
	Recommendation *RecommendationResponse `json:"recommendation,omitempty"`

	// Error is the per-item failure; other items are unaffected.
	Error *JobErrorDTO `json:"error,omitempty"`
}

// BatchResponse is the body of a batch recommendation reply.
type BatchResponse struct {
	// Results has one entry per submitted request, in order.
	Results []BatchItemDTO `json:"results"`

	// Succeeded and Failed count the split.
	Succeeded int `json:"succeeded"`
	Failed    int `json:"failed"`
}

// maxBatchSize bounds one batch call; larger workloads should go
// through the async job surface one scenario at a time.
const maxBatchSize = 256

// handleBatch implements POST /v2/recommendations/batch with
// partial-failure semantics: the response is 200 whenever the batch
// itself was well-formed, and each item carries its own error.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Requests) == 0 {
		s.problem(w, r, CodeInvalidRequest, http.StatusBadRequest, "batch needs at least one request")
		return
	}
	if len(req.Requests) > maxBatchSize {
		s.problem(w, r, CodeInvalidRequest, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds the %d-request limit", len(req.Requests), maxBatchSize))
		return
	}

	breqs := make([]broker.Request, len(req.Requests))
	for i, rr := range req.Requests {
		breqs[i] = rr.ToBroker()
	}
	s.markDegraded(w)
	items := s.engine.RecommendBatch(r.Context(), breqs)

	resp := BatchResponse{Results: make([]BatchItemDTO, len(items))}
	for i, item := range items {
		dto := BatchItemDTO{Index: item.Index}
		if item.Err != nil {
			code := CodeInvalidRequest
			if errors.Is(item.Err, context.Canceled) || errors.Is(item.Err, context.DeadlineExceeded) {
				code = CodeCancelled
			}
			dto.Error = &JobErrorDTO{Code: code, Detail: item.Err.Error()}
			resp.Failed++
		} else {
			rr := FromRecommendation(item.Rec)
			dto.Recommendation = &rr
			resp.Succeeded++
		}
		resp.Results[i] = dto
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

package httpapi

import (
	"bufio"
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"uptimebroker/internal/jobs"
	"uptimebroker/internal/optimize"
)

// TestStrategySelectableEndToEnd drives every registered strategy
// through the wire request field and checks the response both echoes
// the concrete solver and recommends the same option — strategy is a
// performance knob, never a correctness one.
func TestStrategySelectableEndToEnd(t *testing.T) {
	_, client, _ := newTestServer(t)
	ctx := context.Background()

	base, err := client.Recommend(ctx, caseStudyWire())
	if err != nil {
		t.Fatal(err)
	}
	// The case study's auto default is the paper's pruned search.
	if base.Search.Strategy != optimize.StrategyPruned {
		t.Fatalf("default strategy echoed %q, want pruned", base.Search.Strategy)
	}

	for _, strategy := range []string{
		optimize.StrategyExhaustive, optimize.StrategyPruned,
		optimize.StrategyBranchAndBound, optimize.StrategyParallelPruned,
	} {
		req := caseStudyWire()
		req.Strategy = strategy
		resp, err := client.Recommend(ctx, req)
		if err != nil {
			t.Fatalf("Recommend(%s): %v", strategy, err)
		}
		if resp.Search.Strategy != strategy {
			t.Fatalf("strategy %q echoed as %q", strategy, resp.Search.Strategy)
		}
		if resp.BestOption != base.BestOption || resp.MinRiskOption != base.MinRiskOption {
			t.Fatalf("strategy %q changed the recommendation: best %d vs %d",
				strategy, resp.BestOption, base.BestOption)
		}
		if resp.Search.Evaluated+resp.Search.Skipped != resp.Search.SpaceSize {
			t.Fatalf("strategy %q accounting %d+%d != %d",
				strategy, resp.Search.Evaluated, resp.Search.Skipped, resp.Search.SpaceSize)
		}
	}
}

// TestStrategyUnknownRejected: a bogus strategy is a 422
// invalid_request on the synchronous surface.
func TestStrategyUnknownRejected(t *testing.T) {
	_, client, _ := newTestServer(t)
	req := caseStudyWire()
	req.Strategy = "quantum-annealing"
	_, err := client.Recommend(context.Background(), req)
	apiErr, ok := err.(*APIError)
	if !ok {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.Status != http.StatusUnprocessableEntity || apiErr.Code != CodeInvalidRequest {
		t.Fatalf("problem = %d/%s, want 422/%s", apiErr.Status, apiErr.Code, CodeInvalidRequest)
	}
	if !strings.Contains(apiErr.Detail, "quantum-annealing") {
		t.Fatalf("detail %q does not name the bad strategy", apiErr.Detail)
	}
}

// TestJobEchoesStrategy: a job submitted with an explicit strategy
// reports it in the job document's progress block and in the result's
// search stats.
func TestJobEchoesStrategy(t *testing.T) {
	_, client, _ := newTestServer(t)
	ctx := context.Background()

	req := caseStudyWire()
	req.Strategy = optimize.StrategyBranchAndBound
	job, err := client.SubmitJob(ctx, JobKindRecommend, req)
	if err != nil {
		t.Fatal(err)
	}
	status, err := client.WaitJob(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != "done" {
		t.Fatalf("job finished as %s (%+v)", status.State, status.Error)
	}
	if status.Progress == nil || status.Progress.Strategy != optimize.StrategyBranchAndBound {
		t.Fatalf("job progress = %+v, want strategy branch-and-bound", status.Progress)
	}
	rec, err := status.Recommendation()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Search.Strategy != optimize.StrategyBranchAndBound {
		t.Fatalf("result search strategy = %q, want branch-and-bound", rec.Search.Strategy)
	}
}

// TestClientDefaultStrategy: WithStrategy stamps outgoing requests
// that leave the choice open; explicit per-request strategies win.
func TestClientDefaultStrategy(t *testing.T) {
	ts, _, _ := newTestServer(t)
	client, err := NewClient(ts.URL, ts.Client(), WithStrategy(optimize.StrategyExhaustive))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	resp, err := client.Recommend(ctx, caseStudyWire())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Search.Strategy != optimize.StrategyExhaustive {
		t.Fatalf("client default not applied: echoed %q", resp.Search.Strategy)
	}

	req := caseStudyWire()
	req.Strategy = optimize.StrategyPruned
	resp, err = client.Recommend(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Search.Strategy != optimize.StrategyPruned {
		t.Fatalf("per-request strategy lost to the client default: echoed %q", resp.Search.Strategy)
	}

	batch, err := client.RecommendBatch(ctx, []RecommendationRequest{caseStudyWire()})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Succeeded != 1 || batch.Results[0].Recommendation.Search.Strategy != optimize.StrategyExhaustive {
		t.Fatalf("batch item did not inherit the client default: %+v", batch.Results[0])
	}
}

// TestSSEKeepAlivePings: a quiet stream carries ": ping" comment
// frames on the configured cadence, and the terminal event still
// arrives afterwards — pings must not corrupt the framing.
func TestSSEKeepAlivePings(t *testing.T) {
	dir := t.TempDir()
	ts, srv, _ := newDurableServer(t, dir, WithSSEPingInterval(20*time.Millisecond))
	defer func() { ts.Close(); srv.Close() }()

	attached := make(chan struct{})
	finish := make(chan struct{})
	snap, err := srv.jobs.Submit("recommend", nil, func(ctx context.Context) (any, error) {
		<-attached
		<-finish // stay quiet until the test has seen pings
		return map[string]int{"best_option": 1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v2/jobs/"+snap.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var (
		pings    int
		events   int
		gateOpen bool
		released bool
		lastData string
	)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, ": ping"):
			pings++
			if pings >= 3 && !released {
				released = true
				close(finish)
			}
		case strings.HasPrefix(line, "data:"):
			lastData = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		case line == "" && lastData != "":
			events++
			lastData = ""
			if !gateOpen {
				gateOpen = true
				close(attached)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if pings < 3 {
		t.Fatalf("stream carried %d pings, want >= 3", pings)
	}
	if events < 2 {
		t.Fatalf("stream carried %d events, want the lifecycle transitions around the pings", events)
	}
}

// TestClientStreamSurvivesPings: the Go client's SSE reader must
// ignore comment frames and still resolve the wait.
func TestClientStreamSurvivesPings(t *testing.T) {
	dir := t.TempDir()
	ts, srv, client := newDurableServer(t, dir, WithSSEPingInterval(5*time.Millisecond))
	defer func() { ts.Close(); srv.Close() }()

	snap, err := srv.jobs.Submit("recommend", nil, func(ctx context.Context) (any, error) {
		jobs.ReportProgress(ctx, 1, 8)
		time.Sleep(40 * time.Millisecond) // several pings land mid-stream
		jobs.ReportProgress(ctx, 8, 8)
		return map[string]int{"best_option": 1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var observations int
	status, err := client.WaitJob(context.Background(), snap.ID, WithProgress(func(JobProgress) {
		observations++
	}))
	if err != nil {
		t.Fatal(err)
	}
	if status.State != "done" {
		t.Fatalf("job finished as %s", status.State)
	}
	if observations == 0 {
		t.Fatal("progress callback never fired")
	}
}

package failsim

import (
	"context"
	"math"
	"testing"
	"time"

	"uptimebroker/internal/availability"
)

func TestConfigValidateShockFields(t *testing.T) {
	good := Config{
		System: availability.System{Clusters: []availability.Cluster{
			{Name: "c", Nodes: 1, NodeDown: 0.01, FailuresPerYear: 5},
		}},
		Horizon:      time.Hour,
		Replications: 1,
	}
	bad := good
	bad.ShocksPerYear = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative shock rate should fail")
	}
	bad = good
	bad.ShockRepair = -time.Second
	if err := bad.Validate(); err == nil {
		t.Fatal("negative shock repair should fail")
	}
	good.ShocksPerYear = 2
	good.ShockRepair = time.Hour
	if err := good.Validate(); err != nil {
		t.Fatalf("valid shocked config rejected: %v", err)
	}
}

func TestShocksOnlyCluster(t *testing.T) {
	// A cluster with no stochastic failures (f=0) but periodic shocks:
	// every shock takes the whole cluster down for roughly the shock
	// repair duration, so expected downtime ≈ rate·repair/δ.
	sys := availability.System{Clusters: []availability.Cluster{
		{Name: "c", Nodes: 3, Tolerated: 1, NodeDown: 0, FailuresPerYear: 0},
	}}
	ratePerYear, repair := 6.0, 4*time.Hour
	est, err := Run(context.Background(), Config{
		System:        sys,
		Horizon:       20 * 365 * 24 * time.Hour,
		Replications:  48,
		Seed:          31,
		ShocksPerYear: ratePerYear,
		ShockRepair:   repair,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if est.Downtime == 0 {
		t.Fatal("shocked cluster should see downtime")
	}
	// The cluster is down until repairs bring it back within tolerance
	// (2 of 3 nodes up): with exponential repairs the expected broken
	// window is the max-order statistics gap; downtime must be within a
	// small factor of rate·repair/δ.
	naive := ratePerYear * repair.Minutes() / availability.MinutesPerYear
	if est.Downtime < 0.2*naive || est.Downtime > 3*naive {
		t.Fatalf("shock downtime %v implausible vs naive %v", est.Downtime, naive)
	}
	// All of it is breakdown: a total shock leaves nothing to fail over.
	if est.Failover != 0 {
		t.Fatalf("failover = %v, want 0 under total shocks", est.Failover)
	}
}

func TestShocksDegradeModelAgreement(t *testing.T) {
	// The paper's Section IV threat quantified: the analytic model
	// assumes independent node failures, so its uptime prediction is
	// optimistic once common-cause shocks correlate them. Simulated
	// uptime must drop monotonically-ish with the shock rate while the
	// analytic number stays fixed.
	sys := availability.System{Clusters: []availability.Cluster{
		{Name: "compute", Nodes: 4, Tolerated: 1, NodeDown: 0.0055, FailuresPerYear: 5, Failover: 15 * time.Minute},
		{Name: "storage", Nodes: 2, Tolerated: 1, NodeDown: 0.02, FailuresPerYear: 3, Failover: time.Minute},
	}}
	analytic := sys.Uptime()

	base := Config{
		System:       sys,
		Horizon:      10 * 365 * 24 * time.Hour,
		Replications: 48,
		Seed:         17,
		ShockRepair:  2 * time.Hour,
	}

	noShock := base
	est0, err := Run(context.Background(), noShock)
	if err != nil {
		t.Fatalf("Run(0): %v", err)
	}
	if !est0.AgreesWith(analytic) {
		t.Fatalf("without shocks the model should agree: sim %v vs analytic %v", est0.Uptime, analytic)
	}

	shocked := base
	shocked.ShocksPerYear = 12
	est12, err := Run(context.Background(), shocked)
	if err != nil {
		t.Fatalf("Run(12): %v", err)
	}
	if est12.Uptime >= est0.Uptime {
		t.Fatalf("shocks did not reduce uptime: %v vs %v", est12.Uptime, est0.Uptime)
	}
	// At one shock per month per cluster with 2h repairs, the gap must
	// be visible well beyond noise.
	if analytic-est12.Uptime < 5*est12.StdErr {
		t.Fatalf("correlation error %v not visible above noise %v",
			analytic-est12.Uptime, est12.StdErr)
	}
}

func TestShockDeterminism(t *testing.T) {
	sys := availability.System{Clusters: []availability.Cluster{
		{Name: "c", Nodes: 2, Tolerated: 1, NodeDown: 0.01, FailuresPerYear: 6, Failover: 3 * time.Minute},
	}}
	cfg := Config{
		System: sys, Horizon: 365 * 24 * time.Hour, Replications: 8, Seed: 5,
		ShocksPerYear: 4, ShockRepair: time.Hour,
	}
	a, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Uptime != b.Uptime {
		t.Fatalf("shocked runs not deterministic: %v vs %v", a.Uptime, b.Uptime)
	}
}

func TestStaleEventsDropped(t *testing.T) {
	// With heavy shock traffic on a stochastically failing cluster, the
	// generation guard must keep node bookkeeping consistent; downtime
	// fractions stay within [0,1] and breakdown+failover==downtime.
	sys := availability.System{Clusters: []availability.Cluster{
		{Name: "c", Nodes: 3, Tolerated: 1, NodeDown: 0.05, FailuresPerYear: 50, Failover: 5 * time.Minute},
	}}
	est, err := Run(context.Background(), Config{
		System: sys, Horizon: 5 * 365 * 24 * time.Hour, Replications: 16, Seed: 13,
		ShocksPerYear: 26, ShockRepair: 30 * time.Minute,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if est.Uptime < 0 || est.Uptime > 1 {
		t.Fatalf("uptime out of range: %v", est.Uptime)
	}
	if math.Abs(est.Breakdown+est.Failover-est.Downtime) > 1e-9 {
		t.Fatalf("attribution broke: %v + %v != %v", est.Breakdown, est.Failover, est.Downtime)
	}
}

// Package failsim is a discrete-event Monte-Carlo simulator for the
// k-redundancy failure model. It stands in for the live SoftLayer
// deployment of the paper's case study: each node alternates between up
// and down states with exponentially distributed durations whose means
// are derived from the model parameters (P_i, f_i), active-node
// failures absorbed by a standby open a failover window of length t_i
// during which the cluster is unavailable, and more than K̂_i
// simultaneous node outages break the cluster down until repairs catch
// up.
//
// The simulator serves two purposes:
//
//  1. Validation: the analytic uptime U_s of Equations 1–4 is an
//     approximation (independent snapshots, mutually exclusive downtime
//     sources, no failover pile-ups). Running the simulator on the same
//     parameters measures the ground-truth uptime of the generative
//     model and quantifies the approximation error (the VALID
//     experiment in DESIGN.md).
//
//  2. Telemetry substrate: with a Recorder attached, the simulator
//     emits the raw failure/repair/failover observations from which the
//     broker's telemetry database estimates P_i, f_i and t_i — the data
//     the paper says a broker accumulates from its cross-cloud vantage
//     point.
package failsim

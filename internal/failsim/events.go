package failsim

import "container/heap"

// eventKind discriminates the simulator's event types.
type eventKind int

const (
	// eventFail marks a node transition from up to down.
	eventFail eventKind = iota + 1
	// eventRepair marks a node transition from down to up.
	eventRepair
	// eventWake forces a downtime-integration boundary at the end of a
	// failover window; it carries no state change of its own.
	eventWake
	// eventShock is a common-cause failure: every up node of the
	// cluster fails simultaneously (the correlation the analytic model
	// assumes away).
	eventShock
)

// event is one scheduled state transition. Times are simulated minutes
// from the start of the replication.
type event struct {
	at      float64
	kind    eventKind
	cluster int
	node    int
	gen     uint64 // node generation at scheduling time; stale events are dropped
	seq     uint64 // tie-breaker for deterministic ordering
}

// eventQueue is a min-heap of events ordered by time, then sequence
// number so simultaneous events process in schedule order.
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// scheduler wraps the heap with a monotonically increasing sequence
// counter.
type scheduler struct {
	q   eventQueue
	seq uint64
}

func newScheduler(capacity int) *scheduler {
	s := &scheduler{q: make(eventQueue, 0, capacity)}
	heap.Init(&s.q)
	return s
}

func (s *scheduler) schedule(at float64, kind eventKind, cluster, node int) {
	s.scheduleGen(at, kind, cluster, node, 0)
}

func (s *scheduler) scheduleGen(at float64, kind eventKind, cluster, node int, gen uint64) {
	s.seq++
	heap.Push(&s.q, event{at: at, kind: kind, cluster: cluster, node: node, gen: gen, seq: s.seq})
}

func (s *scheduler) next() (event, bool) {
	if len(s.q) == 0 {
		return event{}, false
	}
	return heap.Pop(&s.q).(event), true
}

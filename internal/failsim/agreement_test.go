package failsim

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"uptimebroker/internal/availability"
)

// TestPropertySimulatorAgreesOnRandomSystems samples random clustered
// systems and checks the analytic U_s stays within the simulator's
// agreement envelope — the model-validation property generalized past
// the case study.
func TestPropertySimulatorAgreesOnRandomSystems(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo property test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(61120))
	for trial := 0; trial < 12; trial++ {
		n := 1 + rng.Intn(3)
		clusters := make([]availability.Cluster, n)
		for i := range clusters {
			active := 1 + rng.Intn(3)
			tolerated := rng.Intn(2)
			clusters[i] = availability.Cluster{
				Name:            "c",
				Nodes:           active + tolerated,
				Tolerated:       tolerated,
				NodeDown:        0.001 + rng.Float64()*0.03,
				FailuresPerYear: 1 + rng.Float64()*10,
				Failover:        time.Duration(rng.Intn(15)) * time.Minute,
			}
		}
		sys := availability.System{Clusters: clusters}

		est, err := Run(context.Background(), Config{
			System:       sys,
			Horizon:      8 * 365 * 24 * time.Hour,
			Replications: 48,
			Seed:         int64(trial) * 7919,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		analytic := sys.Uptime()
		if !est.AgreesWith(analytic) {
			t.Fatalf("trial %d: analytic %.6f vs simulated %.6f ± %.6f on %+v",
				trial, analytic, est.Uptime, est.CI95(), clusters)
		}
	}
}

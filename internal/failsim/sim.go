package failsim

import (
	"math/rand"

	"uptimebroker/internal/availability"
)

// Recorder receives the raw observations a monitoring pipeline would
// see. All times are simulated minutes from the replication start.
// Implementations must be cheap; they run inline with the event loop.
type Recorder interface {
	// NodeFailed is called when a node goes down.
	NodeFailed(cluster, node int, at float64)
	// NodeRepaired is called when a node comes back up.
	NodeRepaired(cluster, node int, at float64)
	// FailoverStarted is called when a standby begins taking over for a
	// failed active node; the cluster is unavailable until `until`.
	FailoverStarted(cluster int, at, until float64)
	// ClusterBroken is called when a cluster exceeds its tolerated
	// outages and breaks down.
	ClusterBroken(cluster int, at float64)
	// ClusterRestored is called when repairs bring a broken cluster
	// back within tolerance.
	ClusterRestored(cluster int, at float64)
}

// nodeState tracks one simulated node. gen counts state transitions;
// fail/repair events stamped with an older generation are stale (the
// node transitioned through another path, e.g. a common-cause shock)
// and are dropped.
type nodeState struct {
	up     bool
	active bool
	gen    uint64
}

// clusterState tracks one simulated cluster.
type clusterState struct {
	spec          availability.Cluster
	nodes         []nodeState
	downNodes     int
	activeNodes   int
	failoverUntil float64
	mttf          float64 // minutes; +Inf when the node never fails
	mttr          float64 // minutes
	broken        bool
}

// required returns the number of nodes that must be active.
func (cs *clusterState) required() int { return cs.spec.Active() }

// isDown reports whether the cluster is unavailable at time now: broken
// down or mid-failover.
func (cs *clusterState) isDown(now float64) bool {
	return cs.downNodes > cs.spec.Tolerated || now < cs.failoverUntil
}

// isBroken reports whether the cluster has exceeded its tolerance.
func (cs *clusterState) isBroken() bool {
	return cs.downNodes > cs.spec.Tolerated
}

// replicationResult is the outcome of one simulated horizon.
type replicationResult struct {
	uptime    float64 // fraction of horizon the system was up
	breakdown float64 // downtime fraction attributed to cluster breakdowns
	failover  float64 // downtime fraction attributed to failover windows
}

// shockParams configures common-cause failures for one replication.
// A zero value disables them.
type shockParams struct {
	perYear       float64 // shock arrivals per cluster per year
	repairMinutes float64 // mean repair after a shock; 0 = node's own MTTR
}

// simulate runs one replication of the system over horizonMinutes.
// rec may be nil.
func simulate(sys availability.System, horizonMinutes float64, rng *rand.Rand, rec Recorder, shocks shockParams) replicationResult {
	clusters := make([]clusterState, len(sys.Clusters))
	sched := newScheduler(64)

	for ci := range sys.Clusters {
		spec := sys.Clusters[ci]
		cs := clusterState{
			spec:  spec,
			nodes: make([]nodeState, spec.Nodes),
		}
		if spec.FailuresPerYear > 0 {
			cycle := availability.MinutesPerYear / spec.FailuresPerYear
			cs.mttf = (1 - spec.NodeDown) * cycle
			cs.mttr = spec.NodeDown * cycle
		}

		for ni := range cs.nodes {
			// Draw the initial state from the stationary distribution so
			// the replication needs no burn-in: a node is down with
			// probability P_i.
			down := spec.FailuresPerYear > 0 && rng.Float64() < spec.NodeDown
			cs.nodes[ni].up = !down
			if down {
				cs.downNodes++
				sched.scheduleGen(residual(rng, cs.mttr), eventRepair, ci, ni, 0)
			} else if spec.FailuresPerYear > 0 {
				sched.scheduleGen(residual(rng, cs.mttf), eventFail, ci, ni, 0)
			}
		}

		// Activate up nodes until the requirement is met; the rest are
		// standby. A cluster may start broken if too many nodes drew the
		// down state.
		for ni := range cs.nodes {
			if cs.activeNodes == cs.required() {
				break
			}
			if cs.nodes[ni].up {
				cs.nodes[ni].active = true
				cs.activeNodes++
			}
		}
		cs.broken = cs.isBroken()
		clusters[ci] = cs

		if shocks.perYear > 0 {
			shockMean := availability.MinutesPerYear / shocks.perYear
			sched.schedule(draw(rng, shockMean), eventShock, ci, -1)
		}
	}

	var (
		lastT         float64
		downMinutes   float64
		brokenMinutes float64
	)

	// classify returns (systemDown, anyBroken) at time now.
	classify := func(now float64) (bool, bool) {
		down, broken := false, false
		for i := range clusters {
			if clusters[i].isDown(now) {
				down = true
				if clusters[i].isBroken() {
					broken = true
				}
			}
		}
		return down, broken
	}

	for {
		ev, ok := sched.next()
		if !ok || ev.at >= horizonMinutes {
			// Integrate the tail segment and stop.
			if down, broken := classify(lastT); down {
				downMinutes += horizonMinutes - lastT
				if broken {
					brokenMinutes += horizonMinutes - lastT
				}
			}
			break
		}

		// Integrate the segment [lastT, ev.at) under the pre-event state.
		if down, broken := classify(lastT); down {
			downMinutes += ev.at - lastT
			if broken {
				brokenMinutes += ev.at - lastT
			}
		}
		lastT = ev.at

		cs := &clusters[ev.cluster]
		switch ev.kind {
		case eventFail:
			node := &cs.nodes[ev.node]
			if !node.up || ev.gen != node.gen {
				break // stale: the node transitioned via another path
			}
			node.up = false
			node.gen++
			cs.downNodes++
			if rec != nil {
				rec.NodeFailed(ev.cluster, ev.node, ev.at)
			}

			if node.active {
				node.active = false
				cs.activeNodes--
				// Promote a standby if the cluster can still operate.
				if !cs.isBroken() {
					if si := findStandby(cs); si >= 0 {
						cs.nodes[si].active = true
						cs.activeNodes++
						until := ev.at + cs.spec.Failover.Minutes()
						if until > cs.failoverUntil {
							cs.failoverUntil = until
							sched.schedule(until, eventWake, ev.cluster, -1)
							if rec != nil {
								rec.FailoverStarted(ev.cluster, ev.at, until)
							}
						}
					}
				}
			}
			if cs.isBroken() && !cs.broken {
				cs.broken = true
				if rec != nil {
					rec.ClusterBroken(ev.cluster, ev.at)
				}
			}
			// Schedule the repair.
			sched.scheduleGen(ev.at+draw(rng, cs.mttr), eventRepair, ev.cluster, ev.node, node.gen)

		case eventRepair:
			node := &cs.nodes[ev.node]
			if node.up || ev.gen != node.gen {
				break
			}
			node.up = true
			node.gen++
			cs.downNodes--
			if rec != nil {
				rec.NodeRepaired(ev.cluster, ev.node, ev.at)
			}
			// Rejoin as active if the cluster is short-handed, otherwise
			// as standby.
			if cs.activeNodes < cs.required() {
				node.active = true
				cs.activeNodes++
			}
			if cs.broken && !cs.isBroken() {
				cs.broken = false
				if rec != nil {
					rec.ClusterRestored(ev.cluster, ev.at)
				}
			}
			// Schedule the next stochastic failure. Clusters whose only
			// failure source is shocks (FailuresPerYear = 0) have no
			// MTTF and must not re-enter the stochastic cycle.
			if cs.mttf > 0 {
				sched.scheduleGen(ev.at+draw(rng, cs.mttf), eventFail, ev.cluster, ev.node, node.gen)
			}

		case eventWake:
			// Boundary only; classification above already accounted for
			// the failover window ending at ev.at.

		case eventShock:
			// Common-cause failure: every up node goes down at once.
			repairMean := shocks.repairMinutes
			if repairMean <= 0 {
				repairMean = cs.mttr
			}
			for ni := range cs.nodes {
				node := &cs.nodes[ni]
				if !node.up {
					continue
				}
				node.up = false
				node.gen++
				cs.downNodes++
				if node.active {
					node.active = false
					cs.activeNodes--
				}
				if rec != nil {
					rec.NodeFailed(ev.cluster, ni, ev.at)
				}
				sched.scheduleGen(ev.at+draw(rng, repairMean), eventRepair, ev.cluster, ni, node.gen)
			}
			if cs.isBroken() && !cs.broken {
				cs.broken = true
				if rec != nil {
					rec.ClusterBroken(ev.cluster, ev.at)
				}
			}
			// Next shock for this cluster.
			sched.schedule(ev.at+draw(rng, availability.MinutesPerYear/shocks.perYear),
				eventShock, ev.cluster, -1)
		}
	}

	if horizonMinutes <= 0 {
		return replicationResult{uptime: 1}
	}
	down := downMinutes / horizonMinutes
	broken := brokenMinutes / horizonMinutes
	return replicationResult{
		uptime:    1 - down,
		breakdown: broken,
		failover:  down - broken,
	}
}

// findStandby returns the index of an up, inactive node, or -1.
func findStandby(cs *clusterState) int {
	for i := range cs.nodes {
		if cs.nodes[i].up && !cs.nodes[i].active {
			return i
		}
	}
	return -1
}

// draw samples an exponential duration with the given mean in minutes.
// A zero mean returns 0 (instant transition); this happens for MTTR
// when P_i = 0.
func draw(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return rng.ExpFloat64() * mean
}

// residual samples the remaining duration of an in-progress exponential
// phase. By memorylessness it has the same distribution as a full
// phase.
func residual(rng *rand.Rand, mean float64) float64 {
	return draw(rng, mean)
}

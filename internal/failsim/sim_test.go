package failsim

import (
	"container/heap"
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"uptimebroker/internal/availability"
)

func TestEventQueueOrdering(t *testing.T) {
	s := newScheduler(4)
	s.schedule(5, eventFail, 0, 0)
	s.schedule(1, eventRepair, 0, 1)
	s.schedule(3, eventWake, 1, -1)
	s.schedule(3, eventFail, 2, 0) // same time, later seq

	var got []float64
	var kinds []eventKind
	for {
		ev, ok := s.next()
		if !ok {
			break
		}
		got = append(got, ev.at)
		kinds = append(kinds, ev.kind)
	}
	want := []float64{1, 3, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	// Equal-time events pop in schedule order.
	if kinds[1] != eventWake || kinds[2] != eventFail {
		t.Fatalf("tie-break order = %v", kinds)
	}
}

func TestEventQueueHeapInterface(t *testing.T) {
	q := eventQueue{}
	heap.Push(&q, event{at: 2, seq: 1})
	heap.Push(&q, event{at: 1, seq: 2})
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	first := heap.Pop(&q).(event)
	if first.at != 1 {
		t.Fatalf("Pop at = %v, want 1", first.at)
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{
		System: availability.System{Clusters: []availability.Cluster{
			{Name: "c", Nodes: 1, NodeDown: 0.01, FailuresPerYear: 5},
		}},
		Horizon:      time.Hour,
		Replications: 1,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"empty system", func(c *Config) { c.System.Clusters = nil }},
		{"zero horizon", func(c *Config) { c.Horizon = 0 }},
		{"zero replications", func(c *Config) { c.Replications = 0 }},
		{"negative workers", func(c *Config) { c.Workers = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := good
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestSimulatePerfectSystem(t *testing.T) {
	// A system that never fails has uptime exactly 1.
	sys := availability.System{Clusters: []availability.Cluster{
		{Name: "solid", Nodes: 2, Tolerated: 1, NodeDown: 0, FailuresPerYear: 0},
	}}
	r := simulate(sys, 525600, rand.New(rand.NewSource(1)), nil, shockParams{})
	if r.uptime != 1 {
		t.Fatalf("uptime = %v, want 1", r.uptime)
	}
	if r.breakdown != 0 || r.failover != 0 {
		t.Fatalf("breakdown/failover = %v/%v, want 0", r.breakdown, r.failover)
	}
}

func TestSimulateSingleNodeMatchesStationary(t *testing.T) {
	// A single unclustered node's simulated downtime must converge to P.
	p := 0.03
	sys := availability.System{Clusters: []availability.Cluster{
		{Name: "solo", Nodes: 1, Tolerated: 0, NodeDown: p, FailuresPerYear: 12},
	}}
	est, err := Run(context.Background(), Config{
		System:       sys,
		Horizon:      20 * 365 * 24 * time.Hour,
		Replications: 64,
		Seed:         7,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if math.Abs(est.Downtime-p) > 5*est.StdErr+0.002 {
		t.Fatalf("simulated downtime %v, stationary %v (stderr %v)", est.Downtime, p, est.StdErr)
	}
	// No HA: everything is breakdown, nothing is failover.
	if est.Failover != 0 {
		t.Fatalf("failover downtime = %v, want 0 without standby", est.Failover)
	}
}

func TestSimulateFailoverOnlyCluster(t *testing.T) {
	// With instant repairs (P=0) but nonzero failure rate and failover
	// time, all downtime comes from failover windows:
	// expected ≈ f·t·(K-K̂)/δ.
	f, foMinutes := 10.0, 8.0
	sys := availability.System{Clusters: []availability.Cluster{
		{Name: "fo", Nodes: 3, Tolerated: 1, NodeDown: 0, FailuresPerYear: f,
			Failover: time.Duration(foMinutes * float64(time.Minute))},
	}}
	est, err := Run(context.Background(), Config{
		System:       sys,
		Horizon:      20 * 365 * 24 * time.Hour,
		Replications: 64,
		Seed:         11,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := f * foMinutes * 2 / availability.MinutesPerYear
	if math.Abs(est.Downtime-want) > 5*est.StdErr+0.1*want {
		t.Fatalf("failover downtime %v, want ≈ %v (stderr %v)", est.Downtime, want, est.StdErr)
	}
	if est.Breakdown != 0 {
		t.Fatalf("breakdown = %v, want 0 with instant repairs", est.Breakdown)
	}
}

func TestSimulateAgreesWithAnalyticModel(t *testing.T) {
	// The headline validation: the analytic U_s of Equations 1-4 must
	// agree with the simulated uptime on the case-study-shaped system.
	sys := availability.System{Clusters: []availability.Cluster{
		{Name: "compute", Nodes: 4, Tolerated: 1, NodeDown: 0.0055, FailuresPerYear: 5, Failover: 15 * time.Minute},
		{Name: "storage", Nodes: 2, Tolerated: 1, NodeDown: 0.02, FailuresPerYear: 3, Failover: time.Minute},
		{Name: "network", Nodes: 1, Tolerated: 0, NodeDown: 0.0146, FailuresPerYear: 4},
	}}
	est, err := Run(context.Background(), Config{
		System:       sys,
		Horizon:      10 * 365 * 24 * time.Hour,
		Replications: 96,
		Seed:         20170611,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	analytic := sys.Uptime()
	if !est.AgreesWith(analytic) {
		t.Fatalf("simulated uptime %v ± %v disagrees with analytic %v",
			est.Uptime, est.CI95(), analytic)
	}
	// Both downtime channels must be exercised.
	if est.Breakdown == 0 || est.Failover == 0 {
		t.Fatalf("expected both downtime channels, got breakdown=%v failover=%v",
			est.Breakdown, est.Failover)
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	sys := availability.System{Clusters: []availability.Cluster{
		{Name: "c", Nodes: 2, Tolerated: 1, NodeDown: 0.02, FailuresPerYear: 6, Failover: 5 * time.Minute},
	}}
	base := Config{System: sys, Horizon: 2 * 365 * 24 * time.Hour, Replications: 16, Seed: 99}

	one := base
	one.Workers = 1
	many := base
	many.Workers = 8

	e1, err := Run(context.Background(), one)
	if err != nil {
		t.Fatalf("Run(1 worker): %v", err)
	}
	e8, err := Run(context.Background(), many)
	if err != nil {
		t.Fatalf("Run(8 workers): %v", err)
	}
	if e1.Uptime != e8.Uptime || e1.Breakdown != e8.Breakdown || e1.Failover != e8.Failover {
		t.Fatalf("results differ across worker counts: %+v vs %+v", e1, e8)
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sys := availability.System{Clusters: []availability.Cluster{
		{Name: "c", Nodes: 1, NodeDown: 0.01, FailuresPerYear: 5},
	}}
	_, err := Run(ctx, Config{System: sys, Horizon: time.Hour, Replications: 4})
	if err == nil {
		t.Fatal("canceled run should return an error")
	}
}

func TestRunInvalidConfig(t *testing.T) {
	_, err := Run(context.Background(), Config{})
	if err == nil {
		t.Fatal("invalid config should fail")
	}
}

func TestEstimateCI95(t *testing.T) {
	e := Estimate{StdErr: 0.001}
	if got := e.CI95(); math.Abs(got-0.00196) > 1e-12 {
		t.Fatalf("CI95 = %v, want 0.00196", got)
	}
}

// recorderLog captures recorder callbacks for inspection.
type recorderLog struct {
	failed, repaired   int
	failovers          int
	broken, restored   int
	lastFailoverLength float64
}

func (r *recorderLog) NodeFailed(cluster, node int, at float64)   { r.failed++ }
func (r *recorderLog) NodeRepaired(cluster, node int, at float64) { r.repaired++ }
func (r *recorderLog) FailoverStarted(cluster int, at, until float64) {
	r.failovers++
	r.lastFailoverLength = until - at
}
func (r *recorderLog) ClusterBroken(cluster int, at float64)   { r.broken++ }
func (r *recorderLog) ClusterRestored(cluster int, at float64) { r.restored++ }

func TestRunTracedEmitsObservations(t *testing.T) {
	sys := availability.System{Clusters: []availability.Cluster{
		{Name: "c", Nodes: 2, Tolerated: 1, NodeDown: 0.05, FailuresPerYear: 24, Failover: 10 * time.Minute},
	}}
	var rec recorderLog
	_, err := RunTraced(Config{
		System:       sys,
		Horizon:      5 * 365 * 24 * time.Hour,
		Replications: 1,
		Seed:         3,
	}, &rec)
	if err != nil {
		t.Fatalf("RunTraced: %v", err)
	}
	if rec.failed == 0 || rec.repaired == 0 {
		t.Fatalf("expected failures and repairs, got %d/%d", rec.failed, rec.repaired)
	}
	if rec.failovers == 0 {
		t.Fatal("expected failover events on an HA cluster")
	}
	if math.Abs(rec.lastFailoverLength-10) > 1e-9 {
		t.Fatalf("failover window = %v minutes, want 10", rec.lastFailoverLength)
	}
	// Balanced breakdown bookkeeping: every break is eventually
	// restored or the run ended broken (difference at most 1).
	if rec.broken < rec.restored || rec.broken-rec.restored > 1 {
		t.Fatalf("broken/restored = %d/%d", rec.broken, rec.restored)
	}
}

func TestBreakdownPlusFailoverEqualsDowntime(t *testing.T) {
	sys := availability.System{Clusters: []availability.Cluster{
		{Name: "a", Nodes: 3, Tolerated: 1, NodeDown: 0.03, FailuresPerYear: 10, Failover: 12 * time.Minute},
		{Name: "b", Nodes: 1, Tolerated: 0, NodeDown: 0.01, FailuresPerYear: 4},
	}}
	est, err := Run(context.Background(), Config{
		System: sys, Horizon: 365 * 24 * time.Hour, Replications: 8, Seed: 5,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if math.Abs(est.Breakdown+est.Failover-est.Downtime) > 1e-9 {
		t.Fatalf("breakdown %v + failover %v != downtime %v", est.Breakdown, est.Failover, est.Downtime)
	}
}

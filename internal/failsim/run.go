package failsim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"uptimebroker/internal/availability"
)

// Config parameterizes a Monte-Carlo run.
type Config struct {
	// System is the clustered system to simulate; its parameters are
	// the ground truth of the generative model.
	System availability.System

	// Horizon is the simulated duration of each replication. Longer
	// horizons reduce per-replication variance.
	Horizon time.Duration

	// Replications is the number of independent replications to run.
	Replications int

	// Seed derives the per-replication RNG streams; runs with the same
	// config and seed are bit-for-bit reproducible regardless of
	// worker count.
	Seed int64

	// Workers bounds the concurrent replications; 0 means GOMAXPROCS.
	Workers int

	// ShocksPerYear adds common-cause failures: each cluster receives
	// Poisson shocks at this rate, and a shock fails every currently-up
	// node of the cluster simultaneously. Zero disables shocks. The
	// analytic model assumes node independence, so shocked runs measure
	// the model's correlation error (the paper's Section IV threat).
	ShocksPerYear float64

	// ShockRepair is the mean per-node repair duration after a shock;
	// zero uses each node's own MTTR.
	ShockRepair time.Duration
}

// Validate reports whether the config can be run.
func (c Config) Validate() error {
	if err := c.System.Validate(); err != nil {
		return fmt.Errorf("failsim: %w", err)
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("failsim: horizon %v, must be > 0", c.Horizon)
	}
	if c.Replications < 1 {
		return fmt.Errorf("failsim: replications %d, must be >= 1", c.Replications)
	}
	if c.Workers < 0 {
		return fmt.Errorf("failsim: workers %d, must be >= 0", c.Workers)
	}
	if c.ShocksPerYear < 0 {
		return fmt.Errorf("failsim: shocks per year %v, must be >= 0", c.ShocksPerYear)
	}
	if c.ShockRepair < 0 {
		return fmt.Errorf("failsim: shock repair %v, must be >= 0", c.ShockRepair)
	}
	return nil
}

// shockParams derives the per-replication shock configuration.
func (c Config) shockParams() shockParams {
	return shockParams{
		perYear:       c.ShocksPerYear,
		repairMinutes: c.ShockRepair.Minutes(),
	}
}

// Estimate is the Monte-Carlo uptime estimate with its sampling error.
type Estimate struct {
	// Uptime is the mean uptime fraction across replications.
	Uptime float64

	// Downtime is 1 - Uptime.
	Downtime float64

	// Breakdown is the downtime fraction attributed to cluster
	// breakdowns (the simulated counterpart of B_s).
	Breakdown float64

	// Failover is the downtime fraction attributed to failover windows
	// (the simulated counterpart of F_s).
	Failover float64

	// StdErr is the standard error of the mean uptime.
	StdErr float64

	// Replications echoes the number of replications run.
	Replications int

	// SimulatedYears is the total simulated time across replications.
	SimulatedYears float64
}

// CI95 returns the half-width of the 95% confidence interval around
// Uptime.
func (e Estimate) CI95() float64 { return 1.96 * e.StdErr }

// AgreesWith reports whether an analytic uptime is statistically and
// practically compatible with the estimate: within 3 standard errors
// plus a model-error allowance proportional to the downtime magnitude
// (the paper's Equations 1–4 approximate the generative model, so exact
// agreement is not expected).
func (e Estimate) AgreesWith(analyticUptime float64) bool {
	analyticDown := 1 - analyticUptime
	tolerance := 3*e.StdErr + 0.2*math.Max(analyticDown, e.Downtime) + 1e-6
	return math.Abs(e.Uptime-analyticUptime) <= tolerance
}

// Run executes the configured replications, fanning out across workers,
// and aggregates the estimates. It honors ctx cancellation between
// replications.
func Run(ctx context.Context, cfg Config) (Estimate, error) {
	if err := cfg.Validate(); err != nil {
		return Estimate{}, err
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Replications {
		workers = cfg.Replications
	}

	horizonMinutes := cfg.Horizon.Minutes()
	results := make([]replicationResult, cfg.Replications)

	var (
		wg   sync.WaitGroup
		next = make(chan int)
	)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := range next {
				// Independent stream per replication: seeded from the
				// run seed and the replication index, so results do not
				// depend on scheduling.
				rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*0x9E3779B9))
				results[rep] = simulate(cfg.System, horizonMinutes, rng, nil, cfg.shockParams())
			}
		}()
	}

feed:
	for rep := 0; rep < cfg.Replications; rep++ {
		select {
		case next <- rep:
		case <-runCtx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return Estimate{}, fmt.Errorf("failsim: run canceled: %w", err)
	}
	return aggregate(results, cfg), nil
}

// RunTraced executes a single replication with a Recorder attached and
// returns its result. It is the telemetry-feeding entry point.
func RunTraced(cfg Config, rec Recorder) (Estimate, error) {
	if err := cfg.Validate(); err != nil {
		return Estimate{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	r := simulate(cfg.System, cfg.Horizon.Minutes(), rng, rec, cfg.shockParams())
	return aggregate([]replicationResult{r}, cfg), nil
}

func aggregate(results []replicationResult, cfg Config) Estimate {
	n := float64(len(results))
	var sumU, sumB, sumF float64
	for _, r := range results {
		sumU += r.uptime
		sumB += r.breakdown
		sumF += r.failover
	}
	meanU := sumU / n

	var ss float64
	for _, r := range results {
		d := r.uptime - meanU
		ss += d * d
	}
	stderr := 0.0
	if len(results) > 1 {
		stderr = math.Sqrt(ss/(n-1)) / math.Sqrt(n)
	}

	return Estimate{
		Uptime:         meanU,
		Downtime:       1 - meanU,
		Breakdown:      sumB / n,
		Failover:       sumF / n,
		StdErr:         stderr,
		Replications:   len(results),
		SimulatedYears: n * cfg.Horizon.Minutes() / availability.MinutesPerYear,
	}
}

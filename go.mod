module uptimebroker

go 1.22

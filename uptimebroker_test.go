package uptimebroker

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"
)

// TestFacadeQuickstart exercises the documented happy path through the
// public API only.
func TestFacadeQuickstart(t *testing.T) {
	engine, err := DefaultEngine()
	if err != nil {
		t.Fatalf("DefaultEngine: %v", err)
	}
	rec, err := engine.Recommend(context.Background(), CaseStudy())
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	if rec.BestOption != 3 {
		t.Fatalf("BestOption = %d, want 3", rec.BestOption)
	}
	if rec.SavingsFraction < 0.60 || rec.SavingsFraction > 0.64 {
		t.Fatalf("savings = %v, want ≈ 0.62", rec.SavingsFraction)
	}
}

func TestFacadeTemplates(t *testing.T) {
	three := ThreeTier(ProviderSoftLayerSim)
	if err := three.Validate(); err != nil {
		t.Fatalf("ThreeTier: %v", err)
	}
	five := FiveTierHybrid(ProviderNimbus)
	if err := five.Validate(); err != nil {
		t.Fatalf("FiveTierHybrid: %v", err)
	}
	if len(five.Components) != 5 {
		t.Fatalf("five-tier components = %d", len(five.Components))
	}
}

func TestFacadeMoney(t *testing.T) {
	if got := Dollars(2.5).String(); got != "$2.50" {
		t.Fatalf("Dollars(2.5) = %q", got)
	}
}

func TestFacadeUptimeAndSimulate(t *testing.T) {
	sys := AvailabilitySystem{Clusters: []Cluster{
		{Name: "c", Nodes: 2, Tolerated: 1, NodeDown: 0.01, FailuresPerYear: 6, Failover: 2 * time.Minute},
	}}
	analytic := Uptime(sys)
	if analytic <= 0.99 {
		t.Fatalf("analytic uptime = %v", analytic)
	}
	est, err := Simulate(context.Background(), SimConfig{
		System:       sys,
		Horizon:      5 * 365 * 24 * time.Hour,
		Replications: 32,
		Seed:         9,
	})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if !est.AgreesWith(analytic) {
		t.Fatalf("simulation %v ± %v disagrees with analytic %v", est.Uptime, est.CI95(), analytic)
	}
}

func TestFacadeServerClient(t *testing.T) {
	engine, err := DefaultEngine()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(engine, NewTelemetryStore(), nil)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client, err := NewClient(ts.URL)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	if err := client.Health(context.Background()); err != nil {
		t.Fatalf("Health: %v", err)
	}
	techs, err := client.Technologies(context.Background())
	if err != nil {
		t.Fatalf("Technologies: %v", err)
	}
	if len(techs) < 8 {
		t.Fatalf("technologies = %d", len(techs))
	}
}

// TestFacadeAsyncJobs drives the documented v2 quick start: submit an
// async job through the facade client, wait for it, decode the
// result, and batch-price several scenarios — public API only.
func TestFacadeAsyncJobs(t *testing.T) {
	engine, err := DefaultEngine()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(engine, nil, nil, WithJobTTL(time.Minute), WithJobWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client, err := NewClient(ts.URL, WithRetries(2), WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	wire := WireRequest(CaseStudy())

	job, err := client.SubmitJob(ctx, "recommend", wire)
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	job, err = client.WaitJob(ctx, job.ID)
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	resp, err := job.Recommendation()
	if err != nil {
		t.Fatalf("Recommendation: %v", err)
	}
	if resp.BestOption != 3 {
		t.Fatalf("async BestOption = %d, want 3", resp.BestOption)
	}

	batch, err := client.RecommendBatch(ctx, []RecommendationRequest{wire, wire})
	if err != nil {
		t.Fatalf("RecommendBatch: %v", err)
	}
	if batch.Succeeded != 2 || batch.Failed != 0 {
		t.Fatalf("batch = %d/%d", batch.Succeeded, batch.Failed)
	}

	// Unknown jobs surface as typed APIErrors with stable codes.
	_, err = client.GetJob(ctx, "job-99999999")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "job_not_found" {
		t.Fatalf("GetJob unknown = %v, want APIError job_not_found", err)
	}
}

func TestFacadeRecommendBatch(t *testing.T) {
	engine, err := DefaultEngine()
	if err != nil {
		t.Fatal(err)
	}
	items := engine.RecommendBatch(context.Background(), []Request{CaseStudy(), CaseStudy()})
	for i, item := range items {
		if item.Err != nil {
			t.Fatalf("item %d: %v", i, item.Err)
		}
		if item.Rec.BestOption != 3 {
			t.Fatalf("item %d BestOption = %d", i, item.Rec.BestOption)
		}
	}
}

func TestFacadeFleetDeploy(t *testing.T) {
	cat := DefaultCatalog()
	store := NewTelemetryStore()
	fleet, err := DefaultFleet(cat, store)
	if err != nil {
		t.Fatalf("DefaultFleet: %v", err)
	}
	dep, err := fleet.Deploy(context.Background(), ThreeTier(ProviderSoftLayerSim), map[string]int{"storage": 1})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if dep.NodeCount() != 6 {
		t.Fatalf("NodeCount = %d, want 6", dep.NodeCount())
	}
	if err := fleet.Teardown(dep); err != nil {
		t.Fatalf("Teardown: %v", err)
	}
}

func TestFacadeTelemetryLoop(t *testing.T) {
	truth := AvailabilitySystem{Clusters: []Cluster{
		{Name: "c", Nodes: 2, Tolerated: 0, NodeDown: 0.02, FailuresPerYear: 10},
	}}
	store := NewTelemetryStore()
	col, err := CollectorForSystem(store, truth, []ClusterID{
		{Provider: ProviderSoftLayerSim, Class: "vm.virtualized"},
	})
	if err != nil {
		t.Fatalf("CollectorForSystem: %v", err)
	}
	horizon := 30 * 365 * 24 * time.Hour
	if _, err := SimulateTraced(SimConfig{
		System: truth, Horizon: horizon, Replications: 1, Seed: 4,
	}, col); err != nil {
		t.Fatalf("SimulateTraced: %v", err)
	}
	if err := col.Close(horizon); err != nil {
		t.Fatalf("Close: %v", err)
	}
	est, err := store.Estimate(ProviderSoftLayerSim, "vm.virtualized")
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if est.Node.Down < 0.01 || est.Node.Down > 0.03 {
		t.Fatalf("estimated Down = %v, want ≈ 0.02", est.Node.Down)
	}
}

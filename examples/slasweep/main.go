// Slasweep explores how the broker's recommendation responds to
// contract terms: the same three-tier workload is optimized across a
// grid of SLA stringencies and penalty rates, showing the TCO-driven
// transitions from "no HA" to "HA everywhere".
//
// Run with:
//
//	go run ./examples/slasweep
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"uptimebroker"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	engine, err := uptimebroker.DefaultEngine()
	if err != nil {
		return err
	}

	slas := []float64{95, 96, 97, 98, 99, 99.5, 99.9}
	penalties := []float64{25, 100, 400, 1600}

	fmt.Println("recommended option by SLA (rows) and penalty $/hour (columns):")
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "SLA %")
	for _, p := range penalties {
		fmt.Fprintf(w, "\t$%.0f/h", p)
	}
	fmt.Fprintln(w)

	for _, slaPct := range slas {
		fmt.Fprintf(w, "%.1f", slaPct)
		for _, perHour := range penalties {
			req := uptimebroker.Request{
				Base: uptimebroker.ThreeTier(uptimebroker.ProviderSoftLayerSim),
				SLA: uptimebroker.SLA{
					UptimePercent: slaPct,
					Penalty:       uptimebroker.Penalty{PerHour: uptimebroker.Dollars(perHour)},
				},
			}
			rec, err := engine.Recommend(context.Background(), req)
			if err != nil {
				return err
			}
			best := rec.Best()
			fmt.Fprintf(w, "\t%s (%s)", best.Label(), best.TCO)
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	fmt.Println()
	fmt.Println("reading: cheap penalties tolerate slippage (no HA); steep penalties")
	fmt.Println("or tight SLAs push the optimum toward full redundancy — the")
	fmt.Println("model-backed version of the paper's over/under-engineering tradeoff.")
	return nil
}

// Chaosestate runs the complete brokered-service lifecycle on the
// simulated hybrid estate without touching the analytic simulator at
// all: an estate is provisioned onto a simulated cloud, a seeded chaos
// monkey subjects it to years of failures whose true rates differ from
// the broker's catalog beliefs, the cloud's monitoring records every
// outage into the telemetry store, and the brokerage re-optimizes on
// what was actually observed.
//
// Run with:
//
//	go run ./examples/chaosestate
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"uptimebroker"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cat := uptimebroker.DefaultCatalog()
	store := uptimebroker.NewTelemetryStore()
	clock := uptimebroker.NewVirtualClock(time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC))

	fleet, err := uptimebroker.DefaultFleetWithClock(cat, store, clock)
	if err != nil {
		return err
	}
	cloud, err := fleet.Cloud(uptimebroker.ProviderSoftLayerSim)
	if err != nil {
		return err
	}

	// Provision the three-tier estate (no HA yet — we are measuring the
	// base components).
	dep, err := fleet.Deploy(context.Background(), uptimebroker.ThreeTier(uptimebroker.ProviderSoftLayerSim), nil)
	if err != nil {
		return err
	}
	fmt.Printf("provisioned %d resources on %s, bill %s/month\n",
		dep.NodeCount(), dep.Provider, dep.MonthlyInfraCost())

	// The estate's true reliability contradicts the catalog: compute is
	// far flakier than assumed, storage far better.
	truth := map[string]uptimebroker.NodeParams{
		"vm.virtualized": {Down: 0.025, FailuresPerYear: 20},
		"disk.block":     {Down: 0.0005, FailuresPerYear: 1},
		"net.gateway":    {Down: 0.0005, FailuresPerYear: 1},
	}
	monkey, err := uptimebroker.NewChaosMonkey(cloud, clock, truth, 61)
	if err != nil {
		return err
	}

	// Ten years of operation, one year at a time.
	totalOutages := 0
	for year := 0; year < 10; year++ {
		outages, err := monkey.Run(365 * 24 * time.Hour)
		if err != nil {
			return err
		}
		totalOutages += outages
	}
	fmt.Printf("chaos injected %d outages over 10 simulated years\n\n", totalOutages)

	vm, err := store.Estimate(uptimebroker.ProviderSoftLayerSim, "vm.virtualized")
	if err != nil {
		return err
	}
	fmt.Printf("observed vm.virtualized: P=%.4f, f=%.1f/yr (catalog believed P=0.0055, f=5)\n",
		vm.Node.Down, vm.Node.FailuresPerYear)

	// Recommend with catalog priors vs with the observed reality.
	prior, err := uptimebroker.NewEngine(cat, uptimebroker.CatalogParams{Catalog: cat})
	if err != nil {
		return err
	}
	learned, err := uptimebroker.NewEngine(cat, uptimebroker.TelemetryParams{
		Store:            store,
		Fallback:         uptimebroker.CatalogParams{Catalog: cat},
		MinExposureYears: 5,
	})
	if err != nil {
		return err
	}

	before, err := prior.Recommend(context.Background(), uptimebroker.CaseStudy())
	if err != nil {
		return err
	}
	after, err := learned.Recommend(context.Background(), uptimebroker.CaseStudy())
	if err != nil {
		return err
	}
	fmt.Printf("\non catalog priors:   option #%d (%s) at %s/month\n",
		before.BestOption, before.Best().Label(), before.Best().TCO)
	fmt.Printf("on observed estate:  option #%d (%s) at %s/month\n",
		after.BestOption, after.Best().Label(), after.Best().TCO)

	if err := fleet.Teardown(dep); err != nil {
		return err
	}
	fmt.Println("\nestate torn down; the monitoring-to-recommendation loop is closed.")
	return nil
}

// Telemetryloop demonstrates the broker's observational feedback loop
// (Section II.C + IV of the paper): a simulated estate runs for years
// under a *different* reality than the catalog assumes — storage is
// rock-solid, compute is flaky. The traced simulator feeds the
// telemetry store, the store's estimates displace the catalog
// defaults, and the recommendation flips from storage HA to compute
// HA.
//
// Run with:
//
//	go run ./examples/telemetryloop
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"uptimebroker"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cat := uptimebroker.DefaultCatalog()

	// Recommendation using the catalog's prior beliefs.
	engine, err := uptimebroker.NewEngine(cat, uptimebroker.CatalogParams{Catalog: cat})
	if err != nil {
		return err
	}
	before, err := engine.Recommend(context.Background(), uptimebroker.CaseStudy())
	if err != nil {
		return err
	}
	fmt.Printf("before telemetry: option #%d (%s) at %s/month\n",
		before.BestOption, before.Best().Label(), before.Best().TCO)

	// Ground truth that contradicts the catalog: compute nodes fail 6x
	// more than assumed, storage is 50x better.
	truth := uptimebroker.AvailabilitySystem{Clusters: []uptimebroker.Cluster{
		{Name: "compute", Nodes: 3, Tolerated: 0, NodeDown: 0.03, FailuresPerYear: 20},
		{Name: "storage", Nodes: 1, Tolerated: 0, NodeDown: 0.0004, FailuresPerYear: 1},
		{Name: "network", Nodes: 1, Tolerated: 0, NodeDown: 0.0004, FailuresPerYear: 1},
	}}

	store := uptimebroker.NewTelemetryStore()
	col, err := uptimebroker.CollectorForSystem(store, truth, []uptimebroker.ClusterID{
		{Provider: uptimebroker.ProviderSoftLayerSim, Class: "vm.virtualized"},
		{Provider: uptimebroker.ProviderSoftLayerSim, Class: "disk.block"},
		{Provider: uptimebroker.ProviderSoftLayerSim, Class: "net.gateway"},
	})
	if err != nil {
		return err
	}

	// Observe the estate for 25 simulated years.
	horizon := 25 * 365 * 24 * time.Hour
	if _, err := uptimebroker.SimulateTraced(uptimebroker.SimConfig{
		System:       truth,
		Horizon:      horizon,
		Replications: 1,
		Seed:         7,
	}, col); err != nil {
		return err
	}
	if err := col.Close(horizon); err != nil {
		return err
	}

	vm, err := store.Estimate(uptimebroker.ProviderSoftLayerSim, "vm.virtualized")
	if err != nil {
		return err
	}
	disk, err := store.Estimate(uptimebroker.ProviderSoftLayerSim, "disk.block")
	if err != nil {
		return err
	}
	fmt.Printf("\ntelemetry after %.0f node-years of observation:\n", vm.ExposureYears+disk.ExposureYears)
	fmt.Printf("  vm.virtualized: P=%.4f f=%.1f/yr (catalog assumed P=0.0055 f=5)\n",
		vm.Node.Down, vm.Node.FailuresPerYear)
	fmt.Printf("  disk.block:     P=%.4f f=%.1f/yr (catalog assumed P=0.0200 f=3)\n",
		disk.Node.Down, disk.Node.FailuresPerYear)

	// Rebuild the engine preferring live telemetry.
	learned, err := uptimebroker.NewEngine(cat, uptimebroker.TelemetryParams{
		Store:            store,
		Fallback:         uptimebroker.CatalogParams{Catalog: cat},
		MinExposureYears: 5,
	})
	if err != nil {
		return err
	}
	after, err := learned.Recommend(context.Background(), uptimebroker.CaseStudy())
	if err != nil {
		return err
	}
	fmt.Printf("\nafter telemetry: option #%d (%s) at %s/month\n",
		after.BestOption, after.Best().Label(), after.Best().TCO)
	fmt.Println("\nthe broker's cross-customer database redirected the HA budget to the real risk.")
	return nil
}

// Quickstart: one call into the brokerage with the paper's built-in
// case study, printing the recommendation and the savings against the
// incumbent ad-hoc HA strategy.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"uptimebroker"
)

func main() {
	engine, err := uptimebroker.DefaultEngine()
	if err != nil {
		log.Fatal(err)
	}

	rec, err := engine.Recommend(context.Background(), uptimebroker.CaseStudy())
	if err != nil {
		log.Fatal(err)
	}

	best := rec.Best()
	fmt.Printf("base architecture: %q on %s\n", rec.System, rec.Provider)
	fmt.Printf("SLA: %.0f%% uptime, penalty %s/hour\n\n", rec.SLA.UptimePercent, rec.SLA.Penalty.PerHour)

	fmt.Printf("evaluated %d HA permutations\n", rec.Search.SpaceSize)
	fmt.Printf("recommended: option #%d (%s)\n", best.Option, best.Label())
	fmt.Printf("  expected uptime:  %.4f%%\n", best.Uptime*100)
	fmt.Printf("  HA cost:          %s/month\n", best.HACost)
	fmt.Printf("  expected penalty: %s/month\n", best.Penalty)
	fmt.Printf("  TCO:              %s/month\n", best.TCO)

	if rec.AsIsOption > 0 {
		asIs := rec.Cards[rec.AsIsOption-1]
		fmt.Printf("\nas-is strategy (option #%d) costs %s/month\n", asIs.Option, asIs.TCO)
		fmt.Printf("savings: %.1f%%\n", rec.SavingsFraction*100)
	}
}

// Hybridcloud shows the broker's cross-cloud vantage point: the same
// three-tier workload is quoted against every provider in the hybrid
// portfolio, the cheapest total offer wins, and the winning plan is
// then provisioned onto the simulated cloud, with the resulting
// infrastructure bill printed.
//
// Run with:
//
//	go run ./examples/hybridcloud
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"uptimebroker"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cat := uptimebroker.DefaultCatalog()
	engine, err := uptimebroker.NewEngine(cat, uptimebroker.CatalogParams{Catalog: cat})
	if err != nil {
		return err
	}

	providers := []string{
		uptimebroker.ProviderSoftLayerSim,
		uptimebroker.ProviderNimbus,
		uptimebroker.ProviderStratus,
	}

	fmt.Println("== Quoting the three-tier workload across the portfolio ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "provider\tbest option\tuptime %\tTCO/mo")

	var (
		bestProvider string
		bestCard     uptimebroker.OptionCard
		bestSet      bool
	)
	for _, provider := range providers {
		req := uptimebroker.Request{
			Base: uptimebroker.ThreeTier(provider),
			SLA: uptimebroker.SLA{
				UptimePercent: 98,
				Penalty:       uptimebroker.Penalty{PerHour: uptimebroker.Dollars(100)},
			},
		}
		rec, err := engine.Recommend(context.Background(), req)
		if err != nil {
			return err
		}
		card := rec.Best()
		fmt.Fprintf(w, "%s\t#%d %s\t%.4f\t%s\n", provider, card.Option, card.Label(), card.Uptime*100, card.TCO)
		if !bestSet || card.TCO < bestCard.TCO {
			bestProvider, bestCard, bestSet = provider, card, true
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("\nwinner: %s with option #%d (%s) at %s/month HA TCO\n",
		bestProvider, bestCard.Option, bestCard.Label(), bestCard.TCO)

	// Provision the winning plan onto the simulated hybrid estate.
	fleet, err := uptimebroker.DefaultFleet(cat, nil)
	if err != nil {
		return err
	}
	standby := make(map[string]int)
	for _, choice := range bestCard.Choices {
		if choice.TechID == "" {
			continue
		}
		tech, err := cat.Technology(choice.TechID)
		if err != nil {
			return err
		}
		standby[choice.Component] = tech.StandbyNodes
	}
	dep, err := fleet.Deploy(context.Background(), uptimebroker.ThreeTier(bestProvider), standby)
	if err != nil {
		return err
	}

	fmt.Printf("\n== Deployed to %s ==\n", dep.Provider)
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "component\tresources\tfirst resource ID")
	for _, comp := range uptimebroker.ThreeTier(bestProvider).Components {
		rs := dep.Resources[comp.Name]
		fmt.Fprintf(w, "%s\t%d\t%s\n", comp.Name, len(rs), rs[0].ID)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("total nodes: %d, monthly infrastructure bill: %s\n", dep.NodeCount(), dep.MonthlyInfraCost())

	if err := fleet.Teardown(dep); err != nil {
		return err
	}
	fmt.Println("deployment torn down")
	return nil
}

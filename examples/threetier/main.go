// Threetier walks the paper's Section III client case study end to
// end: it prints every solution option card (Figures 3–9), the summary
// comparison (Figure 10), and then validates the recommended option's
// expected uptime with the Monte-Carlo failure simulator.
//
// Run with:
//
//	go run ./examples/threetier
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"uptimebroker"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	engine, err := uptimebroker.DefaultEngine()
	if err != nil {
		return err
	}
	req := uptimebroker.CaseStudy()
	rec, err := engine.Recommend(context.Background(), req)
	if err != nil {
		return err
	}

	fmt.Println("== Solution options (Figures 3-9) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "option\tHA selection\tC_HA/mo\tuptime %\tpenalty/mo\tTCO/mo")
	for _, c := range rec.Cards {
		fmt.Fprintf(w, "#%d\t%s\t%s\t%.4f\t%s\t%s\n",
			c.Option, c.Label(), c.HACost, c.Uptime*100, c.Penalty, c.TCO)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	best := rec.Best()
	fmt.Printf("\n== Summary (Figure 10) ==\n")
	fmt.Printf("recommended: option #%d (%s) at %s/month\n", best.Option, best.Label(), best.TCO)
	fmt.Printf("min-risk:    option #%d at %s/month\n",
		rec.MinRiskOption, rec.Cards[rec.MinRiskOption-1].TCO)
	fmt.Printf("as-is:       option #%d at %s/month\n",
		rec.AsIsOption, rec.Cards[rec.AsIsOption-1].TCO)
	fmt.Printf("savings:     %.1f%% (paper: ≈62%%)\n", rec.SavingsFraction*100)

	// Monte-Carlo check of the recommendation: rebuild the recommended
	// option's clustered system and simulate it. Storage gets the
	// RAID-1 standby; compute and network stay unclustered.
	cat := uptimebroker.DefaultCatalog()
	vm, err := cat.DefaultNodeParams(req.Base.Provider, "vm.virtualized")
	if err != nil {
		return err
	}
	disk, err := cat.DefaultNodeParams(req.Base.Provider, "disk.block")
	if err != nil {
		return err
	}
	gw, err := cat.DefaultNodeParams(req.Base.Provider, "net.gateway")
	if err != nil {
		return err
	}
	raid1, err := cat.Technology("raid1")
	if err != nil {
		return err
	}

	sys := uptimebroker.AvailabilitySystem{Clusters: []uptimebroker.Cluster{
		{Name: "compute", Nodes: 3, Tolerated: 0, NodeDown: vm.Down, FailuresPerYear: vm.FailuresPerYear},
		{Name: "storage", Nodes: 1 + raid1.StandbyNodes, Tolerated: raid1.StandbyNodes,
			NodeDown: disk.Down, FailuresPerYear: disk.FailuresPerYear, Failover: raid1.Failover},
		{Name: "network", Nodes: 1, Tolerated: 0, NodeDown: gw.Down, FailuresPerYear: gw.FailuresPerYear},
	}}

	fmt.Printf("\n== Monte-Carlo validation of option #%d ==\n", best.Option)
	est, err := uptimebroker.Simulate(context.Background(), uptimebroker.SimConfig{
		System:       sys,
		Horizon:      uptimebroker.DefaultSimHorizon,
		Replications: 64,
		Seed:         time.Now().UnixNano(),
	})
	if err != nil {
		return err
	}
	fmt.Printf("analytic uptime:  %.4f%%\n", best.Uptime*100)
	fmt.Printf("simulated uptime: %.4f%% ± %.4f%% (95%% CI, %.0f simulated years)\n",
		est.Uptime*100, est.CI95()*100, est.SimulatedYears)
	if est.AgreesWith(best.Uptime) {
		fmt.Println("verdict: the analytic model agrees with the simulation")
	} else {
		fmt.Println("verdict: DISAGREEMENT — investigate model assumptions")
	}
	return nil
}

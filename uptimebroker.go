// Package uptimebroker is the public facade of an uptime-optimized
// cloud-architecture brokerage, a full reproduction of Venkateswaran &
// Sarkar, "Uptime-Optimized Cloud Architecture as a Brokered Service"
// (DSN 2017).
//
// Given a base cloud architecture (a serial chain of compute, storage
// and network clusters), an uptime SLA and a slippage penalty, the
// broker enumerates every HA-enabled variant of the architecture,
// computes each variant's expected uptime with the paper's
// probabilistic failure model and its monthly total cost of ownership
// (HA cost + expected penalty), and recommends the cheapest variant.
//
// In-process quick start — every engine entry point takes a
// context.Context and aborts its enumeration when the context is
// cancelled:
//
//	engine, err := uptimebroker.DefaultEngine()
//	if err != nil { ... }
//	rec, err := engine.Recommend(ctx, uptimebroker.CaseStudy())
//	if err != nil { ... }
//	fmt.Println(rec.Best().Label(), rec.Best().TCO)
//
// Many scenarios price concurrently across a bounded worker pool:
//
//	items := engine.RecommendBatch(ctx, []uptimebroker.Request{reqA, reqB})
//
// Over HTTP, the v2 client speaks the job-oriented surface — submit
// asynchronous work, poll or wait for it, cancel it mid-run — with
// retries and typed RFC 9457 errors:
//
//	client, err := uptimebroker.NewClient("http://broker:8080",
//		uptimebroker.WithRetries(3))
//	if err != nil { ... }
//	wire := uptimebroker.WireRequest(uptimebroker.CaseStudy())
//	job, err := client.SubmitJob(ctx, "recommend", wire)
//	if err != nil { ... }
//	job, err = client.WaitJob(ctx, job.ID)
//	if err != nil {
//		var apiErr *uptimebroker.APIError
//		if errors.As(err, &apiErr) { fmt.Println(apiErr.Code) }
//	}
//	resp, err := job.Recommendation()
//
// See docs/api.md for every v1 and v2 route with examples. The facade
// re-exports the domain types from the internal packages; downstream
// code only imports this package (plus the standard library).
package uptimebroker

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"uptimebroker/internal/availability"
	"uptimebroker/internal/broker"
	"uptimebroker/internal/catalog"
	"uptimebroker/internal/cloudsim"
	"uptimebroker/internal/cost"
	"uptimebroker/internal/failsim"
	"uptimebroker/internal/httpapi"
	"uptimebroker/internal/jobs"
	"uptimebroker/internal/jobstore"
	"uptimebroker/internal/lifecycle"
	"uptimebroker/internal/optimize"
	"uptimebroker/internal/reccache"
	"uptimebroker/internal/report"
	"uptimebroker/internal/telemetry"
	"uptimebroker/internal/topology"
)

// Domain types re-exported for downstream use.
type (
	// System is a base cloud solution architecture.
	System = topology.System
	// Component is one cluster slot of a base architecture.
	Component = topology.Component
	// Layer identifies an infrastructure layer.
	Layer = topology.Layer

	// Money is an exact monetary amount (micro-dollars).
	Money = cost.Money
	// SLA is an uptime service-level agreement with penalty clause.
	SLA = cost.SLA
	// Penalty is a slippage penalty clause.
	Penalty = cost.Penalty

	// Cluster is a k-redundancy cluster in the availability model.
	Cluster = availability.Cluster
	// AvailabilitySystem is a serial combination of clusters.
	AvailabilitySystem = availability.System
	// NodeParams are per-node reliability parameters (P, f).
	NodeParams = availability.NodeParams

	// Catalog is the broker's HA technology and provider inventory.
	Catalog = catalog.Catalog
	// HATechnology is one purchasable redundancy mechanism.
	HATechnology = catalog.HATechnology
	// Provider is one cloud in the broker's portfolio.
	Provider = catalog.Provider

	// Engine is the brokerage core.
	Engine = broker.Engine
	// EngineOption customizes NewEngine (default solver strategy).
	EngineOption = broker.EngineOption
	// Request is a brokerage request.
	Request = broker.Request
	// Solver is one pluggable search strategy over a compiled problem;
	// register custom exact strategies with RegisterSolver.
	Solver = optimize.Solver
	// Problem is the compiled search instance a Solver runs on; obtain
	// one from Engine.Compile.
	Problem = optimize.Problem
	// SolverResult is a Solver's outcome: the optimum under both
	// orderings plus effort statistics — and, for the anytime
	// strategies, the certified bound/gap/optimal certificate.
	SolverResult = optimize.Result
	// SolverConfig is the nested solver specification carried by
	// Request.Solver: the strategy plus the anytime lane's budget and
	// knobs (beam width, discrepancy budget, epsilon). The zero value
	// means "auto with no limits".
	SolverConfig = optimize.SolverConfig
	// SolverBudget caps a search's wall-clock time and/or candidate
	// evaluations (SolverConfig.Budget); the approximate strategies
	// stop at the cap and certify what they have.
	SolverBudget = optimize.Budget
	// Candidate is one fully evaluated deployment option.
	Candidate = optimize.Candidate
	// Assignment selects one variant index per component.
	Assignment = optimize.Assignment
	// ComponentChoices is one decision dimension of a Problem.
	ComponentChoices = optimize.ComponentChoices
	// Variant is one HA choice for one component.
	Variant = optimize.Variant
	// Evaluator is a Problem compiled for incremental evaluation:
	// per-variant availability terms and costs derived once, shared
	// read-only across any number of Cursors.
	Evaluator = optimize.Evaluator
	// Cursor is a position in a compiled Problem's candidate space
	// with checkpointed evaluation state: moving it re-folds only the
	// changed assignment digits (amortized O(1) per enumeration step,
	// zero steady-state allocations), with uptime/TCO bit-identical
	// to the from-scratch Problem.Evaluate. Problem.StreamContext and
	// Problem.ParallelStreamContext present every candidate through
	// one for O(1)-memory streaming consumption.
	Cursor = optimize.Cursor
	// SearchStats reports a recommendation's search effort and the
	// concrete solver strategy that ran.
	SearchStats = broker.SearchStats
	// Recommendation is a brokerage answer.
	Recommendation = broker.Recommendation
	// OptionCard is one priced solution option.
	OptionCard = broker.OptionCard
	// Plan maps components to HA technology IDs.
	Plan = broker.Plan
	// ParamSource resolves node reliability parameters.
	ParamSource = broker.ParamSource
	// CatalogParams reads parameters from catalog defaults.
	CatalogParams = broker.CatalogParams
	// TelemetryParams prefers live telemetry estimates.
	TelemetryParams = broker.TelemetryParams

	// ResultCache is the content-addressed recommendation cache an
	// engine can be fronted with (WithResultCache); build one with
	// NewResultCache.
	ResultCache = reccache.Cache
	// CacheConfig bounds a ResultCache: max entries, approximate byte
	// budget, optional TTL.
	CacheConfig = reccache.Config
	// CacheMetrics is a ResultCache's counter snapshot
	// (Engine.CacheMetrics).
	CacheMetrics = reccache.Metrics

	// TelemetryStore aggregates reliability observations.
	TelemetryStore = telemetry.Store

	// SimConfig parameterizes a Monte-Carlo validation run.
	SimConfig = failsim.Config
	// SimEstimate is a Monte-Carlo uptime estimate.
	SimEstimate = failsim.Estimate

	// Server is the HTTP facade of the brokerage.
	Server = httpapi.Server
	// ServerOption customizes NewServer (rate limiting, job TTL and
	// worker pool sizing).
	ServerOption = httpapi.ServerOption
	// Client is the typed HTTP client.
	Client = httpapi.Client
	// ClientOption customizes NewClient (transport, retries, polling).
	ClientOption = httpapi.ClientOption
	// APIError is the typed problem+json error the client returns;
	// unwrap with errors.As and dispatch on Code.
	APIError = httpapi.APIError
	// JobStatus is one async job's client-side state.
	JobStatus = httpapi.JobStatus
	// JobProgress is one live progress observation delivered to a
	// WithProgress callback while waiting on a job.
	JobProgress = httpapi.JobProgress
	// WaitOption customizes one Client.WaitJob call.
	WaitOption = httpapi.WaitOption
	// ListOption narrows one Client.ListJobs call.
	ListOption = httpapi.ListOption
	// JobStoreBackend is the pluggable persistence surface under the
	// async job store (memory and file implementations ship).
	JobStoreBackend = jobstore.Backend
	// BatchItem is one request's outcome within RecommendBatch.
	BatchItem = broker.BatchItem
	// JobMetrics are the job subsystem's operational counters.
	JobMetrics = jobs.Metrics
	// RecommendationRequest is the wire form of a brokerage request —
	// what the HTTP client's Recommend/SubmitJob/RecommendBatch take.
	RecommendationRequest = httpapi.RecommendationRequest
	// SolverConfigDTO is the wire form of SolverConfig — the nested
	// "solver" member of a RecommendationRequest.
	SolverConfigDTO = httpapi.SolverConfigDTO
	// RecommendationResponse is the wire form of a brokerage answer.
	RecommendationResponse = httpapi.RecommendationResponse
	// OptionCardDTO is the wire form of one solution option.
	OptionCardDTO = httpapi.OptionCardDTO
	// BatchResponse is the wire form of a batch pricing reply.
	BatchResponse = httpapi.BatchResponse
	// MetricsResponse is the wire form of GET /v1/metrics: job
	// counters, result-cache counters and the data epochs
	// (Client.Metrics).
	MetricsResponse = httpapi.MetricsResponse

	// Cloud is a simulated IaaS provider control plane.
	Cloud = cloudsim.Cloud
	// Fleet is the simulated hybrid estate.
	Fleet = cloudsim.Fleet
	// Deployment records a provisioned system.
	Deployment = cloudsim.Deployment
	// VirtualClock is a manually driven time source for simulated
	// operation.
	VirtualClock = cloudsim.VirtualClock
	// ChaosMonkey injects seeded failures into a simulated cloud.
	ChaosMonkey = cloudsim.ChaosMonkey

	// Collector adapts simulator traces into telemetry observations.
	Collector = telemetry.Collector
	// ClusterID maps a simulated cluster to a telemetry bucket.
	ClusterID = telemetry.ClusterID

	// LifecycleConfig parameterizes a multi-epoch brokered operation
	// run (observe → re-optimize cycles).
	LifecycleConfig = lifecycle.Config
	// LifecycleEpoch is one epoch's outcome.
	LifecycleEpoch = lifecycle.Epoch

	// SensitivityRow reports marginal downtime per cluster parameter.
	SensitivityRow = availability.SensitivityRow
)

// Layer constants.
const (
	LayerCompute    = topology.LayerCompute
	LayerStorage    = topology.LayerStorage
	LayerNetwork    = topology.LayerNetwork
	LayerMiddleware = topology.LayerMiddleware
)

// Built-in provider names.
const (
	ProviderSoftLayerSim = catalog.ProviderSoftLayerSim
	ProviderNimbus       = catalog.ProviderNimbus
	ProviderStratus      = catalog.ProviderStratus
)

// Solver strategy names, selectable per request (Request.Solver /
// the wire "solver" object, or the deprecated flat "strategy" field),
// per engine (WithDefaultStrategy), per client (WithStrategy /
// WithSolverConfig) and per uptimectl invocation (-strategy). The
// first four are exact — they differ only in latency and effort
// statistics. Beam, LDS and Bounded are the anytime lane: they honor
// wall-clock and evaluation budgets and certify the optimality gap of
// what they return (SearchStats.Bound/Gap/Optimal).
const (
	StrategyAuto           = optimize.StrategyAuto
	StrategyExhaustive     = optimize.StrategyExhaustive
	StrategyPruned         = optimize.StrategyPruned
	StrategyBranchAndBound = optimize.StrategyBranchAndBound
	StrategyParallelPruned = optimize.StrategyParallelPruned
	StrategyBeam           = optimize.StrategyBeam
	StrategyLDS            = optimize.StrategyLDS
	StrategyBounded        = optimize.StrategyBounded
)

// Card-pricing modes, selectable per request (Request.Pricing / the
// wire "pricing" field), per engine (WithDefaultPricing), per client
// (WithPricing) and per uptimectl invocation (-pricing). Every mode
// produces byte-identical option cards; the choice only moves
// latency. PricingAuto — the built-in default — resolves to parallel
// or sequential from the host shape: parallel pays off only when
// there are at least two cores and the candidate space is large
// enough to amortize the workers.
const (
	PricingAuto       = broker.PricingAuto
	PricingParallel   = broker.PricingParallel
	PricingSequential = broker.PricingSequential
)

// Strategies lists the registered solver strategy names.
func Strategies() []string { return optimize.Strategies() }

// RegisterSolver adds a custom named strategy to the solver registry.
// Registered solvers must be exact (identical optimum to exhaustive);
// the brokerage treats strategy purely as a performance knob.
func RegisterSolver(s Solver) error { return optimize.RegisterSolver(s) }

// NewEvaluator validates and compiles a problem for incremental
// evaluation; custom Solvers use it to price candidates in amortized
// O(1) per enumeration step with values bit-identical to
// Problem.Evaluate.
func NewEvaluator(p *Problem) (*Evaluator, error) { return optimize.NewEvaluator(p) }

// WithDefaultStrategy sets the engine-wide solver strategy for
// requests that do not name one (built-in default: auto).
func WithDefaultStrategy(strategy string) EngineOption {
	return broker.WithDefaultStrategy(strategy)
}

// WithDefaultPricing sets the engine-wide card-pricing mode for
// requests that do not set one: PricingAuto (the built-in default),
// PricingParallel or PricingSequential. Requests override it per call
// with Request.Pricing. (WithPricing is the client-side counterpart.)
func WithDefaultPricing(mode string) EngineOption {
	return broker.WithPricing(mode)
}

// WithParallelPricing forces the engine's full card-pricing pass
// parallel (true) or sequential (false).
//
// Deprecated: use WithDefaultPricing; the built-in PricingAuto
// default picks per host, which is what almost every caller wants.
func WithParallelPricing(on bool) EngineOption {
	return broker.WithParallelPricing(on)
}

// WithResultCache fronts the engine with a content-addressed
// recommendation cache: completed Recommend and Pareto answers are
// stored under a stable hash of the catalog epoch, the parameter
// epoch and the normalized request, identical requests are answered
// from memory, and concurrent identical requests collapse onto a
// single solver run. Any catalog mutation or telemetry observation
// changes the epoch and therefore every content address, so stale
// answers are never served. Build the cache with NewResultCache.
func WithResultCache(c *ResultCache) EngineOption {
	return broker.WithResultCache(c)
}

// NewResultCache builds a bounded LRU result cache for
// WithResultCache. The zero Config is usable: 1024 entries, no byte
// budget, no TTL.
func NewResultCache(cfg CacheConfig) *ResultCache {
	return reccache.New(cfg)
}

// WithCacheReport returns a context that reports how the engine's
// result cache answered the call — "hit", "miss" or "shared" — to fn,
// synchronously, before the engine entry point returns. The HTTP
// layer uses it to stamp the X-Cache response header; callers without
// a cached engine simply never hear from fn.
func WithCacheReport(ctx context.Context, fn func(status string)) context.Context {
	return broker.WithCacheReport(ctx, fn)
}

// Dollars converts a dollar amount to Money.
func Dollars(d float64) Money { return cost.Dollars(d) }

// DefaultCatalog returns the built-in catalog: the case-study
// mechanisms (hypervisor HA, RAID-1, dual gateways), the paper's
// future-work mechanisms, and three simulated providers.
func DefaultCatalog() *Catalog { return catalog.Default() }

// NewEngine builds a brokerage engine over a catalog and parameter
// source; options set engine-wide defaults such as the solver
// strategy.
func NewEngine(cat *Catalog, params ParamSource, opts ...EngineOption) (*Engine, error) {
	return broker.New(cat, params, opts...)
}

// DefaultEngine builds an engine over the built-in catalog with
// catalog-default reliability parameters.
func DefaultEngine() (*Engine, error) {
	cat := DefaultCatalog()
	return broker.New(cat, broker.CatalogParams{Catalog: cat})
}

// CaseStudy returns the paper's Section III client case study request.
func CaseStudy() Request { return broker.CaseStudy() }

// FutureWork returns the paper's Section V extended scenario.
func FutureWork(provider string) Request { return broker.FutureWork(provider) }

// ThreeTier returns the paper's three-tier base architecture template.
func ThreeTier(provider string) System { return topology.ThreeTier(provider) }

// FiveTierHybrid returns the future-work five-tier template.
func FiveTierHybrid(provider string) System { return topology.FiveTierHybrid(provider) }

// Simulate runs the Monte-Carlo failure simulator — the ground-truth
// check on the analytic uptime model.
func Simulate(ctx context.Context, cfg SimConfig) (SimEstimate, error) {
	return failsim.Run(ctx, cfg)
}

// NewTelemetryStore returns an empty telemetry store.
func NewTelemetryStore() *TelemetryStore { return telemetry.NewStore() }

// NewServer wires the brokerage HTTP service, including the async
// job subsystem (stop it with Server.Close). store may be nil for a
// read-only broker; logger may be nil to disable request logging.
func NewServer(engine *Engine, store *TelemetryStore, logger *log.Logger, opts ...ServerOption) (*Server, error) {
	return httpapi.NewServer(engine, store, logger, opts...)
}

// WithRateLimit enables server-side token-bucket rate limiting.
func WithRateLimit(rate float64, burst int) ServerOption {
	return httpapi.WithRateLimit(rate, burst)
}

// WithPerClientRateLimit enables per-client token buckets keyed on
// the client IP; WithRateLimit stays the overall cap.
func WithPerClientRateLimit(rate float64, burst int) ServerOption {
	return httpapi.WithPerClientRateLimit(rate, burst)
}

// WithTrustedProxy keys per-client limits on the rightmost
// X-Forwarded-For entry; only set it behind a trusted reverse proxy.
func WithTrustedProxy() ServerOption { return httpapi.WithTrustedProxy() }

// WithJobTTL sets how long the server retains finished async jobs.
func WithJobTTL(d time.Duration) ServerOption { return httpapi.WithJobTTL(d) }

// WithJobWorkers sets the server's async job worker pool size.
func WithJobWorkers(n int) ServerOption { return httpapi.WithJobWorkers(n) }

// WithJobDir makes the server's async job store durable: submissions,
// transitions, progress and results are journaled to a WAL in dir and
// recovered on the next start (queued jobs re-queued, mid-run jobs
// failed with a restart_lost error, finished results kept, IDs
// strictly increasing across restarts).
func WithJobDir(dir string) ServerOption { return httpapi.WithJobDir(dir) }

// WithJobSnapshotInterval sets how often the durable job store
// compacts its WAL into a snapshot.
func WithJobSnapshotInterval(d time.Duration) ServerOption {
	return httpapi.WithJobSnapshotInterval(d)
}

// WithJobFsync makes the durable job store fsync every WAL append for
// power-loss durability (only meaningful with WithJobDir).
func WithJobFsync() ServerOption { return httpapi.WithJobFsync() }

// WithSSEPingInterval sets the keep-alive comment cadence on job
// event streams (default 15s).
func WithSSEPingInterval(d time.Duration) ServerOption {
	return httpapi.WithSSEPingInterval(d)
}

// NewClient builds a typed client for a brokerage service URL.
func NewClient(baseURL string, opts ...ClientOption) (*Client, error) {
	return httpapi.NewClient(baseURL, nil, opts...)
}

// WithHTTPClient swaps the client's underlying *http.Client.
func WithHTTPClient(hc *http.Client) ClientOption { return httpapi.WithHTTPClient(hc) }

// WithRetries enables up to n retries of idempotent calls.
func WithRetries(n int) ClientOption { return httpapi.WithRetries(n) }

// WithRetryBackoff sets the client's base retry backoff.
func WithRetryBackoff(d time.Duration) ClientOption { return httpapi.WithRetryBackoff(d) }

// WithPollInterval sets WaitJob's initial poll interval.
func WithPollInterval(d time.Duration) ClientOption { return httpapi.WithPollInterval(d) }

// WithStrategy stamps a default solver strategy onto every outgoing
// recommendation-type request that makes no solver choice of its own;
// it composes with WithSolverConfig and WithBudget.
func WithStrategy(strategy string) ClientOption { return httpapi.WithStrategy(strategy) }

// WithSolverConfig stamps a default nested solver spec — strategy,
// budget and anytime knobs — onto every outgoing recommendation-type
// request that makes no solver choice of its own.
func WithSolverConfig(cfg SolverConfigDTO) ClientOption { return httpapi.WithSolverConfig(cfg) }

// WithBudget stamps a default anytime budget (wall-clock cap and/or
// evaluation cap, zero meaning unlimited) onto every outgoing
// recommendation-type request that makes no solver choice of its own;
// it composes with WithStrategy and WithSolverConfig.
func WithBudget(wall time.Duration, maxEvaluations int64) ClientOption {
	return httpapi.WithBudget(wall, maxEvaluations)
}

// WithPricing stamps a default card-pricing mode (PricingParallel,
// PricingSequential or PricingAuto) onto every outgoing
// recommendation-type request that does not set one; left unset, the
// server resolves its own default (auto).
func WithPricing(mode string) ClientOption { return httpapi.WithPricing(mode) }

// WithProgress makes one Client.WaitJob call stream live progress
// (state transitions plus evaluated/space_size from the enumeration)
// to the callback, over Server-Sent Events with a polling fallback.
func WithProgress(fn func(JobProgress)) WaitOption { return httpapi.WithProgress(fn) }

// WithStateFilter restricts one Client.ListJobs call to a lifecycle
// state (queued, running, done, failed or cancelled).
func WithStateFilter(state string) ListOption { return httpapi.WithStateFilter(state) }

// WithLimit caps how many jobs one Client.ListJobs call returns.
func WithLimit(n int) ListOption { return httpapi.WithLimit(n) }

// WireRequest converts a domain Request to the wire form the HTTP
// client sends — the bridge between in-process and over-the-wire use.
func WireRequest(req Request) RecommendationRequest {
	out := RecommendationRequest{
		Base:              req.Base,
		SLAPercent:        req.SLA.UptimePercent,
		PenaltyPerHourUSD: req.SLA.Penalty.PerHour.Dollars(),
		AsIs:              map[string]string(req.AsIs),
		AllowedTechs:      req.AllowedTechs,
		Strategy:          req.Strategy,
	}
	if s := req.Solver; s != (SolverConfig{}) {
		out.Solver = &SolverConfigDTO{
			Strategy:         s.Strategy,
			BudgetMS:         s.Budget.Wall.Milliseconds(),
			MaxEvaluations:   s.Budget.MaxEvaluations,
			BeamWidth:        s.BeamWidth,
			MaxDiscrepancies: s.MaxDiscrepancies,
			Epsilon:          s.Epsilon,
		}
	}
	return out
}

// Uptime evaluates the analytic uptime U_s (Equation 4) of a clustered
// system.
func Uptime(sys AvailabilitySystem) float64 { return sys.Uptime() }

// DefaultFleet builds one simulated cloud per catalog provider, all
// wired to the given telemetry store (which may be nil).
func DefaultFleet(cat *Catalog, store *TelemetryStore) (*Fleet, error) {
	if store == nil {
		return cloudsim.DefaultFleet(cat)
	}
	return cloudsim.DefaultFleet(cat, cloudsim.WithTelemetry(store))
}

// DefaultFleetWithClock is DefaultFleet with a virtual clock driving
// every cloud — the setup ChaosMonkey needs.
func DefaultFleetWithClock(cat *Catalog, store *TelemetryStore, clock *VirtualClock) (*Fleet, error) {
	opts := []cloudsim.Option{cloudsim.WithClock(clock.Now)}
	if store != nil {
		opts = append(opts, cloudsim.WithTelemetry(store))
	}
	return cloudsim.DefaultFleet(cat, opts...)
}

// NewVirtualClock starts a virtual clock at the given instant.
func NewVirtualClock(start time.Time) *VirtualClock {
	return cloudsim.NewVirtualClock(start)
}

// NewChaosMonkey builds a seeded failure injector for one simulated
// cloud; rates map component classes to generative parameters.
func NewChaosMonkey(cloud *Cloud, clock *VirtualClock, rates map[string]NodeParams, seed int64) (*ChaosMonkey, error) {
	return cloudsim.NewChaosMonkey(cloud, clock, rates, seed)
}

// SimulateTraced runs one simulator replication with a Collector
// attached, feeding the telemetry store — the broker's observational
// learning loop.
func SimulateTraced(cfg SimConfig, col *Collector) (SimEstimate, error) {
	return failsim.RunTraced(cfg, col)
}

// CollectorForSystem builds a Collector mapping each cluster of a
// simulated system to a telemetry bucket.
func CollectorForSystem(store *TelemetryStore, sys AvailabilitySystem, ids []ClusterID) (*Collector, error) {
	return telemetry.CollectorForSystem(store, sys, ids)
}

// RunLifecycle plays the brokered service through observe-then-
// reoptimize epochs and returns the per-epoch decisions.
func RunLifecycle(cfg LifecycleConfig) ([]LifecycleEpoch, error) {
	return lifecycle.Run(cfg)
}

// ParetoCards filters option cards to the cost × uptime frontier.
func ParetoCards(cards []OptionCard) []OptionCard {
	return broker.ParetoCards(cards)
}

// WriteReport renders a recommendation in the given format ("text",
// "markdown" or "csv") to w.
func WriteReport(w io.Writer, rec *Recommendation, format string) error {
	switch format {
	case "text":
		return report.Text(w, rec)
	case "markdown":
		return report.Markdown(w, rec)
	case "csv":
		return report.CSV(w, rec)
	default:
		return fmt.Errorf("uptimebroker: unknown report format %q", format)
	}
}

// DefaultSimHorizon is a sensible Monte-Carlo horizon for validation
// runs: long enough for tight confidence intervals on case-study-sized
// systems.
const DefaultSimHorizon = 10 * 365 * 24 * time.Hour
